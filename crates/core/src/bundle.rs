//! Index persistence: binary bundles holding the packed reference,
//! contig table, suffix array and CP-OCC occurrence blocks, the same
//! way `bwa-mem2 mem` reads its `.bwt.2bit.64` files rather than
//! re-indexing.
//!
//! Three on-disk layouts exist (all little-endian):
//!
//! * **v2** — reference + u32 flat SA, stream-encoded. Loads through
//!   the rebuild path (BWT + occurrence tables reconstructed).
//! * **v3** — v2 plus the η=32 CP-OCC blocks as 48-byte (counts+bases)
//!   records, still stream-encoded. The batched profile adopts the
//!   blocks without a rebuild.
//! * **v4** — a table-of-contents format with *page-aligned sections*,
//!   generalized over the position width.
//! * **v5** (current) — v4 geometry plus integrity checksums: each TOC
//!   entry's previously-reserved `u32` now carries the section's CRC32
//!   (the same IEEE polynomial gzip uses, [`mem2_seqio::gzip::crc32`]),
//!   and four of the previously-reserved header bytes carry a CRC32 of
//!   the header+TOC itself (computed with that field zeroed). Padding
//!   between sections must be zero and the file must end exactly at the
//!   last section, so a flipped byte *anywhere* in a v5 bundle is
//!   rejected at load with the failing section named. v2–v4 bundles
//!   still load, with a "no checksums" warning.
//!
//! ```text
//! magic "MEM2IDX" + version byte (5)
//! u8 sa_width_bytes (4|8) | u8 occ_width_bytes (4|8)
//! u32 header_crc32 (v5; zero in v4) | 2 reserved bytes
//! u32 n_sections | per section: u32 id, u32 crc32 (v5; zero in v4),
//!                                u64 offset, u64 len
//! META  (id 1, unaligned): u64 l_pac, contigs, holes, BwtMeta,
//!                          u64 sa_len, u64 n_blocks
//! PAC   (id 2, 4096-aligned): packed reference bytes
//! SA    (id 3, 4096-aligned): sa_len entries, 4 or 8 bytes each
//! OCC   (id 4, 4096-aligned): n_blocks × 64-byte CP-OCC records
//!                             (narrow CpBlock or wide CpBlockWide)
//! ```
//!
//! Page-aligned sections are the point: a loader can `mmap` the file
//! and hand each big array to the index *in place* (see
//! [`load_index_file`] and [`crate::mmap`]) — zero copies, demand
//! paging, cross-process page sharing. The buffered fallback reads the
//! file into one page-aligned heap buffer and serves the identical
//! views.
//!
//! The suffix-array entry width is chosen at index time: 4-byte entries
//! while the doubled text fits `u32` (see [`flat_sa_fits`]), 8-byte
//! entries beyond — so references past ~2 Gbp index and align instead
//! of being rejected. [`BundleError::TooLarge`] now fires only when a
//! caller *forces* the narrow layout onto an oversized reference.
//! Alignments are byte-identical across widths.

use std::sync::Arc;

use bytes::{Buf, BufMut};

use mem2_fmindex::{BuildOpts, BwtMeta, CpBlock, CpBlockWide, FlatSa, FmIndex, OccOpt, OccTable};
use mem2_obs::log as olog;
use mem2_seqio::gzip::crc32;
use mem2_seqio::refseq::{AmbHole, ContigAnn, ContigSet};
use mem2_seqio::{AlignedBytes, ByteRegion, PackedSeq, Reference, RegionOwner, PAGE_ALIGN};
use mem2_suffix::{IndexWidth, SaVec};

const MAGIC_PREFIX: &[u8; 7] = b"MEM2IDX";
/// Current format version: v4 TOC geometry + per-section CRC32s.
pub const BUNDLE_VERSION: u8 = 5;
/// Oldest version this build still reads (via the rebuild path).
pub const BUNDLE_VERSION_MIN: u8 = 2;
/// First version carrying integrity checksums.
const BUNDLE_VERSION_CRC: u8 = 5;
/// Byte offset of the header CRC32 field (zeroed while computing it).
const HEADER_CRC_OFF: usize = 10;
/// Fixed v4/v5 header length: magic+version, widths+reserved, count, TOC.
const TOC_HEADER_LEN: usize = 8 + 8 + 4 + 4 * 24;

/// v4 section ids.
const SEC_META: u32 = 1;
const SEC_PAC: u32 = 2;
const SEC_SA: u32 = 3;
const SEC_OCC: u32 = 4;

/// Errors raised while encoding, decoding or loading a bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// Magic bytes absent.
    BadMagic,
    /// Recognized bundle, but a version this build cannot read.
    UnsupportedVersion(u8),
    /// The reference does not fit a *forced* narrow (u32) layout; holds
    /// the offending doubled-text length. The automatic width choice
    /// never produces this — it widens to u64 instead.
    TooLarge(usize),
    /// Input ended early or a length field is inconsistent.
    Truncated(&'static str),
    /// A v5 section's bytes do not match its stored CRC32 — the file is
    /// corrupt (bit flip, torn write, bad medium). Names the section.
    ChecksumMismatch {
        /// Which part failed: `header`, `META`, `PAC`, `SA`, `OCC`, or
        /// `padding`.
        section: &'static str,
        /// CRC32 recorded in the TOC.
        stored: u32,
        /// CRC32 computed over the on-disk bytes.
        computed: u32,
    },
    /// A string field was not UTF-8.
    BadString,
    /// Reading or mapping the index file failed.
    Io(String),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::BadMagic => write!(f, "not a mem2 index bundle (bad magic)"),
            BundleError::UnsupportedVersion(v) => write!(
                f,
                "unsupported bundle version {v} (this build reads versions \
                 {BUNDLE_VERSION_MIN}-{BUNDLE_VERSION}); re-run `mem2 index`"
            ),
            BundleError::TooLarge(n) => write!(
                f,
                "reference too large for the forced 32-bit layout: doubled text is {n} \
                 positions, limit {}; use --index-width 64 (or auto)",
                u32::MAX
            ),
            BundleError::Truncated(what) => write!(f, "bundle truncated while reading {what}"),
            BundleError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "bundle section {section} failed CRC32 verification \
                 (stored {stored:#010x}, computed {computed:#010x}); the file is \
                 corrupt — re-run `mem2 index`"
            ),
            BundleError::BadString => write!(f, "bundle contains a non-UTF-8 name"),
            BundleError::Io(e) => write!(f, "index file I/O failed: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

/// Does the doubled text of a reference with `l_pac` bases fit the u32
/// flat-SA layout? (Entries index positions `0 ..= 2·l_pac`.)
pub fn flat_sa_fits(l_pac: usize) -> bool {
    2 * l_pac < u32::MAX as usize
}

/// Pick the position width for a reference: narrow while the doubled
/// text fits 4-byte entries, wide beyond. `narrow_limit` overrides the
/// `u32` ceiling (in doubled-text positions) so tests and the CLI's
/// `--width-limit` can exercise the wide path on tiny fixtures.
pub fn choose_width(l_pac: usize, narrow_limit: Option<usize>) -> IndexWidth {
    let limit = narrow_limit.unwrap_or(u32::MAX as usize);
    if 2 * l_pac < limit {
        IndexWidth::W32
    } else {
        IndexWidth::W64
    }
}

/// Write the v2 body: reference, contigs, holes, pac, suffix array.
fn encode_core(reference: &Reference, sa: &[u32], out: &mut Vec<u8>) {
    out.put_u64_le(reference.len() as u64);
    encode_contigs(reference, out);
    out.put_u64_le(reference.pac.raw().len() as u64);
    out.put_slice(reference.pac.raw());
    out.put_u64_le(sa.len() as u64);
    for &v in sa {
        out.put_u32_le(v);
    }
}

fn encode_contigs(reference: &Reference, out: &mut Vec<u8>) {
    out.put_u32_le(reference.contigs.contigs.len() as u32);
    for c in &reference.contigs.contigs {
        out.put_u32_le(c.name.len() as u32);
        out.put_slice(c.name.as_bytes());
        out.put_u64_le(c.offset as u64);
        out.put_u64_le(c.len as u64);
    }
    out.put_u32_le(reference.contigs.holes.len() as u32);
    for h in &reference.contigs.holes {
        out.put_u64_le(h.offset as u64);
        out.put_u64_le(h.len as u64);
    }
}

fn encode_bwt_meta(meta: &BwtMeta, out: &mut Vec<u8>) {
    for &c in &meta.counts {
        out.put_u64_le(c as u64);
    }
    for &c in &meta.c_before {
        out.put_u64_le(c as u64);
    }
    out.put_u64_le(meta.sentinel_row as u64);
    out.put_u64_le(meta.n_stored as u64);
}

/// Serialize the retired v3 layout (stream-encoded, u32-only, 48-byte
/// occ records). Kept so tests can exercise the backward-compatible
/// load path and the v3 → v4 migration; `mem2 index` always writes the
/// current version.
pub fn save_bundle(
    reference: &Reference,
    sa: &[u32],
    occ: &OccOpt,
) -> Result<Vec<u8>, BundleError> {
    if !flat_sa_fits(reference.len()) {
        return Err(BundleError::TooLarge(2 * reference.len() + 1));
    }
    let blocks = occ
        .narrow_blocks()
        .ok_or(BundleError::TooLarge(occ.meta().n_stored as usize))?;
    let mut out = Vec::with_capacity(
        8 + 64 * reference.contigs.contigs.len()
            + reference.pac.raw().len()
            + 4 * sa.len()
            + 96
            + 48 * blocks.len(),
    );
    out.put_slice(MAGIC_PREFIX);
    out.put_slice(&[3u8]);
    encode_core(reference, sa, &mut out);
    encode_bwt_meta(occ.meta(), &mut out);
    out.put_u64_le(blocks.len() as u64);
    for b in blocks {
        for &c in &b.counts {
            out.put_u32_le(c);
        }
        out.put_slice(&b.bases);
    }
    Ok(out)
}

/// Serialize the retired v2 layout (no occurrence section). Kept so
/// tests can exercise the backward-compatible load path.
pub fn save_bundle_v2(reference: &Reference, sa: &[u32]) -> Result<Vec<u8>, BundleError> {
    if !flat_sa_fits(reference.len()) {
        return Err(BundleError::TooLarge(2 * reference.len() + 1));
    }
    let mut out = Vec::with_capacity(
        8 + 64 * reference.contigs.contigs.len() + reference.pac.raw().len() + 4 * sa.len(),
    );
    out.put_slice(MAGIC_PREFIX);
    out.put_slice(&[2u8]);
    encode_core(reference, sa, &mut out);
    Ok(out)
}

fn pad_to_page(out: &mut Vec<u8>) {
    let rem = out.len() % PAGE_ALIGN;
    if rem != 0 {
        out.resize(out.len() + PAGE_ALIGN - rem, 0);
    }
}

/// Serialize the retired v4 layout: v5 geometry with the checksum
/// fields left zero. Kept so tests can exercise the backward-compatible
/// "no checksums" load path and the v4 → v5 migration.
pub fn save_bundle_v4(
    reference: &Reference,
    sa: &SaVec,
    occ: &OccOpt,
) -> Result<Vec<u8>, BundleError> {
    save_bundle_toc(reference, sa, occ, 4)
}

/// Serialize the current (v5) layout: checksummed TOC header, then
/// META, then the PAC / SA / OCC sections at page-aligned offsets. The
/// suffix array and occurrence table keep whatever width they were
/// built with.
pub fn save_bundle_v5(
    reference: &Reference,
    sa: &SaVec,
    occ: &OccOpt,
) -> Result<Vec<u8>, BundleError> {
    save_bundle_toc(reference, sa, occ, BUNDLE_VERSION)
}

fn save_bundle_toc(
    reference: &Reference,
    sa: &SaVec,
    occ: &OccOpt,
    version: u8,
) -> Result<Vec<u8>, BundleError> {
    let mut meta_payload = Vec::new();
    meta_payload.put_u64_le(reference.len() as u64);
    encode_contigs(reference, &mut meta_payload);
    encode_bwt_meta(occ.meta(), &mut meta_payload);
    meta_payload.put_u64_le(sa.len() as u64);
    meta_payload.put_u64_le(occ.n_blocks() as u64);

    let header_len = TOC_HEADER_LEN;
    let meta_off = header_len;
    let occ_bytes = occ.blocks_bytes();
    let pac_off = (meta_off + meta_payload.len()).next_multiple_of(PAGE_ALIGN);
    let pac_len = reference.pac.raw().len();
    let sa_off = (pac_off + pac_len).next_multiple_of(PAGE_ALIGN);
    let sa_len_bytes = sa.len() * sa.width().bytes();
    let occ_off = (sa_off + sa_len_bytes).next_multiple_of(PAGE_ALIGN);

    let sections = [
        (SEC_META, meta_off, meta_payload.len()),
        (SEC_PAC, pac_off, pac_len),
        (SEC_SA, sa_off, sa_len_bytes),
        (SEC_OCC, occ_off, occ_bytes.len()),
    ];
    let mut out = Vec::with_capacity(occ_off + occ_bytes.len());
    out.put_slice(MAGIC_PREFIX);
    out.put_slice(&[version]);
    out.put_slice(&[sa.width().bytes() as u8, occ.width().bytes() as u8]);
    out.put_slice(&[0u8; 6]);
    out.put_u32_le(4);
    for (id, off, len) in sections {
        out.put_u32_le(id);
        out.put_u32_le(0);
        out.put_u64_le(off as u64);
        out.put_u64_le(len as u64);
    }
    debug_assert_eq!(out.len(), meta_off);
    out.put_slice(&meta_payload);
    pad_to_page(&mut out);
    debug_assert_eq!(out.len(), pac_off);
    out.put_slice(reference.pac.raw());
    pad_to_page(&mut out);
    debug_assert_eq!(out.len(), sa_off);
    match sa {
        SaVec::U32(v) => {
            for &x in v {
                out.put_u32_le(x);
            }
        }
        SaVec::U64(v) => {
            for &x in v {
                out.put_u64_le(x);
            }
        }
    }
    pad_to_page(&mut out);
    debug_assert_eq!(out.len(), occ_off);
    out.put_slice(occ_bytes);
    if version >= BUNDLE_VERSION_CRC {
        // patch each section's CRC32 into its TOC entry's reserved
        // field, then stamp the header CRC (its own field zeroed)
        for (i, (_, off, len)) in sections.iter().enumerate() {
            let c = crc32(&out[*off..*off + *len]).to_le_bytes();
            let field = 20 + 24 * i + 4;
            out[field..field + 4].copy_from_slice(&c);
        }
        let h = crc32(&out[..TOC_HEADER_LEN]).to_le_bytes();
        out[HEADER_CRC_OFF..HEADER_CRC_OFF + 4].copy_from_slice(&h);
    }
    Ok(out)
}

/// Write a bundle crash-safely: the bytes go to a temp file in the same
/// directory, are fsynced, and are atomically renamed over `path` (the
/// directory is then fsynced too). A process killed at any point leaves
/// either the old file or none — never a torn bundle.
pub fn write_bundle_atomic(path: &std::path::Path, bytes: &[u8]) -> Result<(), BundleError> {
    use std::io::Write;
    let io = |e: std::io::Error| BundleError::Io(format!("{}: {e}", path.display()));
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("bundle");
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        crate::checkpoint::kill_point(crate::checkpoint::KP_RENAME);
        std::fs::rename(&tmp, path)?;
        if let Ok(d) = std::fs::File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(io)
}

/// Build the current-version bundle for a reference, choosing the
/// position width automatically (never fails on size — oversized
/// references widen to u64 entries).
pub fn build_bundle(reference: &Reference) -> Result<Vec<u8>, BundleError> {
    build_bundle_with_width(reference, None, None)
}

/// Build the current-version bundle with an explicit width. `None`
/// chooses automatically (honoring `narrow_limit`, the CLI's
/// `--width-limit` test override); forcing [`IndexWidth::W32`] onto a
/// reference past the u32 ceiling fails with [`BundleError::TooLarge`]
/// — the only remaining way to hit that error.
pub fn build_bundle_with_width(
    reference: &Reference,
    width: Option<IndexWidth>,
    narrow_limit: Option<usize>,
) -> Result<Vec<u8>, BundleError> {
    let width = match width {
        Some(IndexWidth::W32) if !flat_sa_fits(reference.len()) => {
            return Err(BundleError::TooLarge(2 * reference.len() + 1));
        }
        Some(w) => w,
        None => choose_width(reference.len(), narrow_limit),
    };
    let s = FmIndex::doubled_text(reference);
    let sa = mem2_suffix::suffix_array_width(&s, width);
    let bwt = mem2_suffix::bwt_from_savec(&s, &sa);
    let occ = OccOpt::build_with_width(&bwt, width);
    save_bundle_v5(reference, &sa, &occ)
}

/// A decoded bundle with owned storage: the reference, the doubled
/// text's suffix array (in whichever width the bundle carries), and —
/// for v3+ — the persisted optimized occurrence table.
#[derive(Debug)]
pub struct LoadedBundle {
    /// Packed reference plus contig annotations.
    pub reference: Reference,
    /// Suffix array of the doubled text.
    pub sa: SaVec,
    /// CP-OCC table, absent only for v2 bundles.
    pub occ: Option<OccOpt>,
}

/// Parsed v4/v5 geometry: decoded metadata plus the byte extents of the
/// big sections, shared by the owned and zero-copy loaders. For v5 the
/// per-section CRC32s ride along so loaders can verify lazily.
struct V4Layout {
    version: u8,
    sa_width: IndexWidth,
    occ_width: IndexWidth,
    l_pac: usize,
    contigs: ContigSet,
    meta: BwtMeta,
    pac: (usize, usize),
    sa: (usize, usize),
    occ: (usize, usize),
    /// Stored section CRC32s, indexed by section id − 1 (zeros for v4).
    crcs: [u32; 4],
}

impl V4Layout {
    /// Does this bundle carry checksums at all?
    fn checksummed(&self) -> bool {
        self.version >= BUNDLE_VERSION_CRC
    }

    /// Verify one section's bytes against its stored CRC32 (no-op for
    /// checksum-less v4 bundles).
    fn verify_section(
        &self,
        full: &[u8],
        id: u32,
        extent: (usize, usize),
    ) -> Result<(), BundleError> {
        if !self.checksummed() {
            return Ok(());
        }
        let section = match id {
            SEC_META => "META",
            SEC_PAC => "PAC",
            SEC_SA => "SA",
            _ => "OCC",
        };
        let stored = self.crcs[(id - 1) as usize];
        let computed = crc32(&full[extent.0..extent.0 + extent.1]);
        if computed != stored {
            return Err(BundleError::ChecksumMismatch {
                section,
                stored,
                computed,
            });
        }
        Ok(())
    }

    /// Verify every big section eagerly (v5; no-op for v4). META is
    /// always verified during parsing, before it is decoded.
    fn verify_all(&self, full: &[u8]) -> Result<(), BundleError> {
        for (id, extent) in [(SEC_PAC, self.pac), (SEC_SA, self.sa), (SEC_OCC, self.occ)] {
            self.verify_section(full, id, extent)?;
        }
        Ok(())
    }
}

fn need(buf: &[u8], n: usize, what: &'static str) -> Result<(), BundleError> {
    if buf.len() < n {
        Err(BundleError::Truncated(what))
    } else {
        Ok(())
    }
}

fn decode_contigs(buf: &mut &[u8]) -> Result<ContigSet, BundleError> {
    need(buf, 4, "contig count")?;
    let n_contigs = buf.get_u32_le() as usize;
    let mut contigs = Vec::with_capacity(n_contigs.min(1 << 20));
    for _ in 0..n_contigs {
        need(buf, 4, "contig name length")?;
        let nl = buf.get_u32_le() as usize;
        need(buf, nl + 16, "contig record")?;
        let name = std::str::from_utf8(&buf[..nl])
            .map_err(|_| BundleError::BadString)?
            .to_string();
        buf.advance(nl);
        let offset = buf.get_u64_le() as usize;
        let len = buf.get_u64_le() as usize;
        contigs.push(ContigAnn { name, offset, len });
    }
    need(buf, 4, "hole count")?;
    let n_holes = buf.get_u32_le() as usize;
    let mut holes = Vec::with_capacity(n_holes.min(1 << 20));
    for _ in 0..n_holes {
        need(buf, 16, "hole record")?;
        let offset = buf.get_u64_le() as usize;
        let len = buf.get_u64_le() as usize;
        holes.push(AmbHole { offset, len });
    }
    Ok(ContigSet { contigs, holes })
}

fn decode_bwt_meta(buf: &mut &[u8]) -> Result<BwtMeta, BundleError> {
    need(buf, 88, "occ meta")?;
    let mut counts = [0i64; 4];
    for c in counts.iter_mut() {
        *c = buf.get_u64_le() as i64;
    }
    let mut c_before = [0i64; 5];
    for c in c_before.iter_mut() {
        *c = buf.get_u64_le() as i64;
    }
    let sentinel_row = buf.get_u64_le() as i64;
    let n_stored = buf.get_u64_le() as i64;
    Ok(BwtMeta {
        counts,
        c_before,
        sentinel_row,
        n_stored,
    })
}

/// Parse a v4/v5 bundle's header, TOC and META section; validate every
/// cross-field length before any section is touched. For v5 this also
/// verifies the header CRC (so a flipped TOC byte is caught before any
/// offset is trusted), the META CRC (before decoding), and that the
/// inter-section padding is zero with nothing after the last section.
fn parse_v4(full: &[u8]) -> Result<V4Layout, BundleError> {
    let version = full[7];
    let checksummed = version >= BUNDLE_VERSION_CRC;
    let mut buf = &full[8..];
    need(buf, 12, "v4 header")?;
    if checksummed {
        need(&full[8..], TOC_HEADER_LEN - 8, "v5 header")?;
        let stored = u32::from_le_bytes([
            full[HEADER_CRC_OFF],
            full[HEADER_CRC_OFF + 1],
            full[HEADER_CRC_OFF + 2],
            full[HEADER_CRC_OFF + 3],
        ]);
        let mut head = [0u8; TOC_HEADER_LEN];
        head.copy_from_slice(&full[..TOC_HEADER_LEN]);
        head[HEADER_CRC_OFF..HEADER_CRC_OFF + 4].fill(0);
        let computed = crc32(&head);
        if computed != stored {
            return Err(BundleError::ChecksumMismatch {
                section: "header",
                stored,
                computed,
            });
        }
    }
    let sa_width = IndexWidth::from_bytes(buf[0]).ok_or(BundleError::Truncated("sa width byte"))?;
    let occ_width =
        IndexWidth::from_bytes(buf[1]).ok_or(BundleError::Truncated("occ width byte"))?;
    buf.advance(8);
    let n_sections = buf.get_u32_le() as usize;
    if n_sections != 4 {
        return Err(BundleError::Truncated("section count"));
    }
    let mut sections = [(0usize, 0usize); 5];
    let mut crcs = [0u32; 4];
    for _ in 0..n_sections {
        need(buf, 24, "toc entry")?;
        let id = buf.get_u32_le();
        let crc = buf.get_u32_le();
        let off = buf.get_u64_le() as usize;
        let len = buf.get_u64_le() as usize;
        if !(1..=4).contains(&id) {
            return Err(BundleError::Truncated("unknown section id"));
        }
        if off.checked_add(len).is_none_or(|end| end > full.len()) {
            return Err(BundleError::Truncated("section extent"));
        }
        sections[id as usize] = (off, len);
        crcs[(id - 1) as usize] = crc;
    }
    if checksummed {
        verify_padding(full, &sections)?;
    }
    let (meta_off, meta_len) = sections[SEC_META as usize];
    if checksummed {
        let computed = crc32(&full[meta_off..meta_off + meta_len]);
        let stored = crcs[(SEC_META - 1) as usize];
        if computed != stored {
            return Err(BundleError::ChecksumMismatch {
                section: "META",
                stored,
                computed,
            });
        }
    }
    let mut meta_buf = &full[meta_off..meta_off + meta_len];
    need(meta_buf, 8, "l_pac")?;
    let l_pac = meta_buf.get_u64_le() as usize;
    let contigs = decode_contigs(&mut meta_buf)?;
    let meta = decode_bwt_meta(&mut meta_buf)?;
    need(meta_buf, 16, "sa/occ lengths")?;
    let sa_len = meta_buf.get_u64_le() as usize;
    let n_blocks = meta_buf.get_u64_le() as usize;

    let pac = sections[SEC_PAC as usize];
    let sa = sections[SEC_SA as usize];
    let occ = sections[SEC_OCC as usize];
    if pac.1 != l_pac.div_ceil(4) {
        return Err(BundleError::Truncated("pac size inconsistent with l_pac"));
    }
    if sa_len != 2 * l_pac + 1 || sa.1 != sa_len * sa_width.bytes() {
        return Err(BundleError::Truncated("sa size inconsistent with l_pac"));
    }
    if meta.n_stored != 2 * l_pac as i64 || meta.c_before[4] != meta.n_stored + 1 {
        return Err(BundleError::Truncated("occ meta inconsistent with l_pac"));
    }
    if n_blocks as i64 != meta.n_stored / OccOpt::rows_per_block() as i64 + 1
        || occ.1 != 64 * n_blocks
    {
        return Err(BundleError::Truncated("occ block count inconsistent"));
    }
    Ok(V4Layout {
        version,
        sa_width,
        occ_width,
        l_pac,
        contigs,
        meta,
        pac,
        sa,
        occ,
        crcs,
    })
}

/// Check that every byte outside the header and the four sections is
/// zero padding, and that the file ends exactly at the last section —
/// so no byte of a v5 bundle escapes verification.
fn verify_padding(full: &[u8], sections: &[(usize, usize); 5]) -> Result<(), BundleError> {
    let mut extents: Vec<(usize, usize)> = sections[1..]
        .iter()
        .map(|&(off, len)| (off, off + len))
        .collect();
    extents.sort_unstable();
    let mut end = TOC_HEADER_LEN;
    for (start, sec_end) in extents {
        if start < end {
            return Err(BundleError::Truncated("overlapping sections"));
        }
        let gap = &full[end..start];
        if gap.iter().any(|&b| b != 0) {
            return Err(BundleError::ChecksumMismatch {
                section: "padding",
                stored: crc32(&vec![0u8; gap.len()]),
                computed: crc32(gap),
            });
        }
        end = sec_end;
    }
    if end != full.len() {
        return Err(BundleError::Truncated("trailing bytes after last section"));
    }
    Ok(())
}

/// Decode a SA section's bytes into owned width-dispatched entries.
fn decode_sa_owned(mut bytes: &[u8], width: IndexWidth) -> SaVec {
    match width {
        IndexWidth::W32 => {
            let mut v = Vec::with_capacity(bytes.len() / 4);
            while bytes.remaining() >= 4 {
                v.push(bytes.get_u32_le());
            }
            SaVec::U32(v)
        }
        IndexWidth::W64 => {
            let mut v = Vec::with_capacity(bytes.len() / 8);
            while bytes.remaining() >= 8 {
                v.push(bytes.get_u64_le());
            }
            SaVec::U64(v)
        }
    }
}

/// Decode an OCC section's 64-byte records into an owned table.
fn decode_occ_owned(bytes: &[u8], width: IndexWidth, meta: BwtMeta) -> OccOpt {
    match width {
        IndexWidth::W32 => {
            let blocks = bytes
                .chunks_exact(64)
                .map(|rec| {
                    let mut rec = rec;
                    let mut counts = [0u32; 4];
                    for c in counts.iter_mut() {
                        *c = rec.get_u32_le();
                    }
                    let mut bases = [0u8; 32];
                    bases.copy_from_slice(&rec[..32]);
                    CpBlock::new(counts, bases)
                })
                .collect();
            OccOpt::from_parts(meta, blocks)
        }
        IndexWidth::W64 => {
            let blocks = bytes
                .chunks_exact(64)
                .map(|rec| {
                    let mut rec = rec;
                    let mut counts = [0u64; 4];
                    for c in counts.iter_mut() {
                        *c = rec.get_u64_le();
                    }
                    let mut bases = [0u8; 32];
                    bases.copy_from_slice(&rec[..32]);
                    CpBlockWide { counts, bases }
                })
                .collect();
            OccOpt::from_wide_parts(meta, blocks)
        }
    }
}

/// Decode a bundle of any supported version into owned storage. v5
/// checksums are verified eagerly.
pub fn load_bundle(buf: &[u8]) -> Result<LoadedBundle, BundleError> {
    let version = check_magic(buf)?;
    if version >= 4 {
        let layout = parse_v4(buf)?;
        layout.verify_all(buf)?;
        let pac = PackedSeq::from_raw(
            buf[layout.pac.0..layout.pac.0 + layout.pac.1].to_vec(),
            layout.l_pac,
        );
        let sa = decode_sa_owned(
            &buf[layout.sa.0..layout.sa.0 + layout.sa.1],
            layout.sa_width,
        );
        let occ = decode_occ_owned(
            &buf[layout.occ.0..layout.occ.0 + layout.occ.1],
            layout.occ_width,
            layout.meta,
        );
        return Ok(LoadedBundle {
            reference: Reference {
                pac,
                contigs: layout.contigs,
            },
            sa,
            occ: Some(occ),
        });
    }
    load_bundle_legacy(buf, version)
}

fn check_magic(buf: &[u8]) -> Result<u8, BundleError> {
    if buf.len() < 8 || &buf[..7] != MAGIC_PREFIX {
        return Err(BundleError::BadMagic);
    }
    let version = buf[7];
    if !(BUNDLE_VERSION_MIN..=BUNDLE_VERSION).contains(&version) {
        return Err(BundleError::UnsupportedVersion(version));
    }
    Ok(version)
}

/// Decode a stream-encoded v2/v3 bundle.
fn load_bundle_legacy(buf: &[u8], version: u8) -> Result<LoadedBundle, BundleError> {
    let mut buf = &buf[8..];
    need(buf, 8, "header")?;
    let l_pac = buf.get_u64_le() as usize;
    let contigs = decode_contigs(&mut buf)?;
    need(buf, 8, "pac length")?;
    let pac_bytes = buf.get_u64_le() as usize;
    need(buf, pac_bytes, "pac data")?;
    if pac_bytes != l_pac.div_ceil(4) {
        return Err(BundleError::Truncated("pac size inconsistent with l_pac"));
    }
    let pac = PackedSeq::from_raw(buf[..pac_bytes].to_vec(), l_pac);
    buf.advance(pac_bytes);
    need(buf, 8, "sa length")?;
    let sa_len = buf.get_u64_le() as usize;
    if sa_len != 2 * l_pac + 1 {
        return Err(BundleError::Truncated("sa size inconsistent with l_pac"));
    }
    need(buf, 4 * sa_len, "sa data")?;
    let mut sa = Vec::with_capacity(sa_len);
    for _ in 0..sa_len {
        sa.push(buf.get_u32_le());
    }
    let sa = SaVec::U32(sa);
    validate_sa_permutation(&sa)?;
    let occ = if version >= 3 {
        let meta = decode_bwt_meta(&mut buf)?;
        if meta.n_stored != 2 * l_pac as i64 || meta.c_before[4] != meta.n_stored + 1 {
            return Err(BundleError::Truncated("occ meta inconsistent with l_pac"));
        }
        need(buf, 8, "occ block count")?;
        let n_blocks = buf.get_u64_le() as usize;
        if n_blocks as i64 != meta.n_stored / OccOpt::rows_per_block() as i64 + 1 {
            return Err(BundleError::Truncated("occ block count inconsistent"));
        }
        need(buf, 48 * n_blocks, "occ blocks")?;
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let mut block_counts = [0u32; 4];
            for c in block_counts.iter_mut() {
                *c = buf.get_u32_le();
            }
            let mut bases = [0u8; 32];
            bases.copy_from_slice(&buf[..32]);
            buf.advance(32);
            blocks.push(CpBlock::new(block_counts, bases));
        }
        Some(OccOpt::from_parts(meta, blocks))
    } else {
        None
    };
    let reference = Reference { pac, contigs };
    Ok(LoadedBundle { reference, sa, occ })
}

/// Defense for checksum-less (pre-v5) bundles: SA entries must form a
/// permutation of `0..n` or the downstream BWT rebuild indexes out of
/// bounds. A single damaged entry breaks the range check or the
/// arithmetic sum; deeper corruption in these legacy formats is a
/// documented gap (they load with a "predates checksums" warning).
fn validate_sa_permutation(sa: &SaVec) -> Result<(), BundleError> {
    let n = sa.len() as u64;
    let mut sum = 0u64;
    for i in 0..sa.len() {
        let x = sa.get(i) as u64;
        if x >= n {
            return Err(BundleError::Truncated("sa entry out of range"));
        }
        sum += x;
    }
    if sum != n * (n - 1) / 2 {
        return Err(BundleError::Truncated("sa entries are not a permutation"));
    }
    Ok(())
}

/// When to verify a checksummed (v5) bundle's section CRCs.
///
/// Legacy v2–v4 bundles carry no checksums, so the mode is moot there —
/// they load with a warning either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Verify every section up front, before the index is assembled.
    /// Forced for buffered ([`LoadMode::Read`]) loads, which touch
    /// every byte anyway.
    #[default]
    Eager,
    /// Verify each section when the loader first consumes it; sections
    /// the selected profile never reads (the classic profile's OCC) are
    /// skipped. The header and META are always verified during parsing.
    FirstTouch,
}

/// How zero-copy the assembled index ended up, for logging and the
/// bench harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadReport {
    /// Bundle format version.
    pub version: u8,
    /// Suffix-array entry width, once known (v4 header; legacy = u32).
    pub sa_width: IndexWidth,
    /// The file itself was memory-mapped (vs. buffered into the heap).
    pub file_mapped: bool,
    /// The big arrays are served from the loaded region in place (no
    /// per-component copies) — true only for v4+ and a profile that
    /// needs no rebuilt components.
    pub zero_copy: bool,
    /// The bundle carries CRC32 checksums (v5+) and every section this
    /// load consumed was verified against them.
    pub checksummed: bool,
    /// Total bundle size in bytes.
    pub bytes: usize,
}

/// Assemble the index from a loaded bundle region. v4 bundles with a
/// profile that needs no unpersisted components adopt the region's
/// arrays *in place*; everything else decodes owned and, where needed,
/// rebuilds (v2, or the classic profile's η=128 table).
pub fn load_index_region(
    region: ByteRegion,
    opts: &BuildOpts,
    file_mapped: bool,
    verify: VerifyMode,
) -> Result<(Reference, FmIndex, LoadReport), BundleError> {
    let bytes = region.as_slice();
    let version = check_magic(bytes)?;
    let mut report = LoadReport {
        version,
        sa_width: IndexWidth::W32,
        file_mapped,
        zero_copy: false,
        checksummed: version >= BUNDLE_VERSION_CRC,
        bytes: region.len(),
    };
    if version < BUNDLE_VERSION_CRC {
        olog::warn(
            "bundle",
            "bundle predates checksums; integrity not verified",
            &[("version", &version)],
        );
    }
    if version >= 4 {
        let layout = parse_v4(bytes)?;
        match verify {
            VerifyMode::Eager => layout.verify_all(bytes)?,
            VerifyMode::FirstTouch => {
                // PAC and SA are consumed by every profile; OCC only by
                // profiles adopting the persisted table — the classic
                // profile rebuilds its η=128 table and never reads it.
                layout.verify_section(bytes, SEC_PAC, layout.pac)?;
                layout.verify_section(bytes, SEC_SA, layout.sa)?;
                if !opts.orig_occ {
                    layout.verify_section(bytes, SEC_OCC, layout.occ)?;
                }
            }
        }
        report.sa_width = layout.sa_width;
        let pac_region = region.slice(layout.pac.0, layout.pac.1);
        let reference = Reference {
            pac: PackedSeq::from_region(pac_region, layout.l_pac),
            contigs: layout.contigs,
        };
        let sa_region = region.slice(layout.sa.0, layout.sa.1);
        let occ_region = region.slice(layout.occ.0, layout.occ.1);
        if !opts.orig_occ {
            // zero-copy path: borrow the mapped arrays in place; fall
            // back to owned decode per component (big-endian hosts)
            let flat =
                FlatSa::from_region(sa_region.clone(), layout.sa_width).unwrap_or_else(|_| {
                    FlatSa::build(decode_sa_owned(sa_region.as_slice(), layout.sa_width))
                });
            let occ = OccOpt::from_region(layout.meta, occ_region.clone(), layout.occ_width)
                .unwrap_or_else(|_| {
                    decode_occ_owned(occ_region.as_slice(), layout.occ_width, layout.meta)
                });
            report.zero_copy = flat.is_mapped() && occ.is_mapped();
            let index = FmIndex::from_mapped_parts(&reference, flat, occ, opts);
            return Ok((reference, index, report));
        }
        // classic profile: the η=128 table is not persisted — rebuild
        // from an owned copy of the suffix array
        let sa = decode_sa_owned(sa_region.as_slice(), layout.sa_width);
        if sa.len() != 2 * layout.l_pac + 1 {
            return Err(BundleError::Truncated("sa size inconsistent with l_pac"));
        }
        if layout.version < BUNDLE_VERSION_CRC {
            validate_sa_permutation(&sa)?;
        }
        let index = FmIndex::build_from_sa(&reference, sa, opts);
        return Ok((reference, index, report));
    }
    let LoadedBundle { reference, sa, occ } = load_bundle_legacy(bytes, version)?;
    let index = match occ {
        Some(occ) if !opts.orig_occ => FmIndex::from_persisted_occ(&reference, sa, occ, opts),
        _ => FmIndex::build_from_sa(&reference, sa, opts),
    };
    Ok((reference, index, report))
}

/// Load a bundle from a byte buffer and build the index components the
/// workflow needs. v4+ buffers are staged into page-aligned storage so
/// the in-place views apply; [`load_index_file`] avoids even that copy.
/// Verification is always eager — the buffer is fully resident.
pub fn load_index(buf: &[u8], opts: &BuildOpts) -> Result<(Reference, FmIndex), BundleError> {
    let version = check_magic(buf)?;
    if version >= 4 {
        let owner: RegionOwner = Arc::new(AlignedBytes::from_slice(buf));
        let (reference, index, _) =
            load_index_region(ByteRegion::whole(owner), opts, false, VerifyMode::Eager)?;
        return Ok((reference, index));
    }
    let LoadedBundle { reference, sa, occ } = load_bundle_legacy(buf, version)?;
    let index = match occ {
        Some(occ) if !opts.orig_occ => FmIndex::from_persisted_occ(&reference, sa, occ, opts),
        _ => FmIndex::build_from_sa(&reference, sa, opts),
    };
    Ok((reference, index))
}

/// How [`load_index_file`] should bring the bundle into memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// `mmap` when the platform supports it, else buffered read.
    #[default]
    Auto,
    /// Require an attempt to `mmap` (still falls back when the platform
    /// cannot map at all, with `file_mapped: false` in the report).
    Mmap,
    /// Always buffered read into page-aligned heap memory.
    Read,
}

fn open_region(path: &std::path::Path, mode: LoadMode) -> Result<(ByteRegion, bool), BundleError> {
    let io = |e: std::io::Error| BundleError::Io(format!("{}: {e}", path.display()));
    #[cfg(all(unix, feature = "mmap"))]
    if mode != LoadMode::Read {
        if let Some(m) = crate::mmap::try_map_file(path).map_err(io)? {
            let owner: RegionOwner = Arc::new(m);
            return Ok((ByteRegion::whole(owner), true));
        }
    }
    let _ = mode;
    let buf = crate::mmap::read_file_aligned(path).map_err(io)?;
    let owner: RegionOwner = Arc::new(buf);
    Ok((ByteRegion::whole(owner), false))
}

/// Open an index bundle file and assemble the index, memory-mapping it
/// when possible (v4+ bundles then serve their big arrays zero-copy).
///
/// `verify` picks the v5 checksum policy for mapped loads; buffered
/// ([`LoadMode::Read`]) loads always verify eagerly — every byte is
/// read regardless, so the scan is free.
pub fn load_index_file(
    path: &std::path::Path,
    opts: &BuildOpts,
    mode: LoadMode,
    verify: VerifyMode,
) -> Result<(Reference, FmIndex, LoadReport), BundleError> {
    let (region, file_mapped) = open_region(path, mode)?;
    let verify = if file_mapped {
        verify
    } else {
        VerifyMode::Eager
    };
    load_index_region(region, opts, file_mapped, verify)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem2_seqio::GenomeSpec;

    #[test]
    fn bundle_roundtrips_and_rebuilds_identically() {
        let genome = GenomeSpec {
            len: 5_000,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrZ");
        let direct = FmIndex::build(&reference, &BuildOpts::default());

        let bytes = build_bundle(&reference).expect("encode");
        let loaded = load_bundle(&bytes).expect("roundtrip");
        assert_eq!(loaded.reference.pac, reference.pac);
        assert_eq!(loaded.reference.contigs, reference.contigs);
        // the persisted CP-OCC table equals a from-scratch build
        let occ = loaded.occ.as_ref().expect("v4 carries the occ table");
        assert_eq!(occ.meta(), direct.opt().meta());
        let mut sink = mem2_memsim::NoopSink;
        for r in (-1..=2 * direct.l_pac).step_by(97) {
            assert_eq!(occ.occ4(r, &mut sink), direct.opt().occ4(r, &mut sink));
        }
        let rebuilt = FmIndex::build_from_sa(&loaded.reference, loaded.sa, &BuildOpts::default());
        assert_eq!(rebuilt.meta, direct.meta);
        assert_eq!(rebuilt.l_pac, direct.l_pac);
        // spot-check SA storage equality
        let flat_a = direct.sa_flat.as_ref().expect("flat built");
        let flat_b = rebuilt.sa_flat.as_ref().expect("flat built");
        assert_eq!(flat_a.as_u32(), flat_b.as_u32());
    }

    #[test]
    fn v4_sections_are_page_aligned() {
        let genome = GenomeSpec {
            len: 2_000,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrA");
        let bytes = build_bundle(&reference).expect("encode");
        assert_eq!(bytes[7], BUNDLE_VERSION);
        let layout = parse_v4(&bytes).expect("parse");
        for (off, _) in [layout.pac, layout.sa, layout.occ] {
            assert_eq!(off % PAGE_ALIGN, 0, "section offset {off} not page-aligned");
        }
        assert_eq!(layout.sa_width, IndexWidth::W32);
        assert_eq!(layout.occ_width, IndexWidth::W32);
    }

    #[test]
    fn forced_wide_bundle_roundtrips_and_matches_narrow() {
        let genome = GenomeSpec {
            len: 3_000,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrW");
        let narrow = build_bundle_with_width(&reference, Some(IndexWidth::W32), None).unwrap();
        let wide = build_bundle_with_width(&reference, Some(IndexWidth::W64), None).unwrap();
        assert_eq!(parse_v4(&wide).unwrap().sa_width, IndexWidth::W64);
        let (_, idx_n) = load_index(&narrow, &BuildOpts::optimized_only()).unwrap();
        let (_, idx_w) = load_index(&wide, &BuildOpts::optimized_only()).unwrap();
        assert_eq!(idx_n.meta, idx_w.meta);
        let mut sink = mem2_memsim::NoopSink;
        for r in 0..=2 * idx_n.l_pac {
            assert_eq!(idx_n.sa_lookup(r, &mut sink), idx_w.sa_lookup(r, &mut sink));
        }
        for r in (-1..=2 * idx_n.l_pac).step_by(37) {
            assert_eq!(
                idx_n.opt().occ4(r, &mut sink),
                idx_w.opt().occ4(r, &mut sink)
            );
        }
    }

    #[test]
    fn width_limit_override_selects_wide_automatically() {
        // the acceptance criterion for >2 Gbp references, scaled down:
        // with the narrow ceiling overridden to a tiny value, the auto
        // choice goes wide and the bundle still loads and serves
        assert_eq!(choose_width(1_000, None), IndexWidth::W32);
        assert_eq!(choose_width(1_000, Some(100)), IndexWidth::W64);
        let genome = GenomeSpec {
            len: 1_200,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrL");
        let bytes = build_bundle_with_width(&reference, None, Some(100)).expect("encode");
        let layout = parse_v4(&bytes).expect("parse");
        assert_eq!(layout.sa_width, IndexWidth::W64);
        let (_, idx) = load_index(&bytes, &BuildOpts::optimized_only()).expect("load");
        let direct = FmIndex::build(&reference, &BuildOpts::optimized_only());
        let mut sink = mem2_memsim::NoopSink;
        for r in 0..=2 * idx.l_pac {
            assert_eq!(idx.sa_lookup(r, &mut sink), direct.sa_lookup(r, &mut sink));
        }
    }

    #[test]
    fn auto_width_no_longer_rejects_past_the_narrow_ceiling() {
        // regression: before v4, build_bundle returned TooLarge for any
        // reference past the u32 ceiling; now the auto choice widens.
        // (Simulated via the narrow-limit override — a real >2 Gbp
        // fixture is not buildable in CI.)
        let genome = GenomeSpec {
            len: 800,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrBig");
        assert!(build_bundle_with_width(&reference, None, Some(10)).is_ok());
        // forcing narrow onto an "oversized" reference is the only
        // remaining TooLarge, and only at the real u32 ceiling
        let err = BundleError::TooLarge(5_000_000_000);
        assert!(err.to_string().contains("--index-width 64"));
    }

    #[test]
    fn zero_copy_load_serves_identical_results() {
        let genome = GenomeSpec {
            len: 4_000,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrM");
        let direct = FmIndex::build(&reference, &BuildOpts::optimized_only());
        for width in [IndexWidth::W32, IndexWidth::W64] {
            let bytes = build_bundle_with_width(&reference, Some(width), None).unwrap();
            let owner: RegionOwner = Arc::new(AlignedBytes::from_slice(&bytes));
            let (refer, idx, report) = load_index_region(
                ByteRegion::whole(owner),
                &BuildOpts::optimized_only(),
                false,
                VerifyMode::Eager,
            )
            .expect("load");
            assert!(report.zero_copy, "width {width}");
            assert_eq!(report.version, BUNDLE_VERSION);
            assert!(report.checksummed, "v5 loads are verified");
            assert_eq!(report.sa_width, width);
            assert_eq!(refer.contigs, reference.contigs);
            assert_eq!(refer.pac, reference.pac);
            assert!(idx.sa_flat.as_ref().unwrap().is_mapped());
            assert!(idx.opt().is_mapped());
            let mut sink = mem2_memsim::NoopSink;
            for r in 0..=2 * idx.l_pac {
                assert_eq!(idx.sa_lookup(r, &mut sink), direct.sa_lookup(r, &mut sink));
            }
            for r in (-1..=2 * idx.l_pac).step_by(53) {
                assert_eq!(
                    idx.opt().occ4(r, &mut sink),
                    direct.opt().occ4(r, &mut sink)
                );
            }
        }
    }

    #[test]
    fn load_index_file_roundtrips_in_both_modes() {
        let genome = GenomeSpec {
            len: 2_500,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrF");
        let bytes = build_bundle(&reference).expect("encode");
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mem2_bundle_test_{}.idx", std::process::id()));
        std::fs::write(&path, &bytes).expect("write");
        let direct = FmIndex::build(&reference, &BuildOpts::optimized_only());
        let mut reports = Vec::new();
        for mode in [LoadMode::Auto, LoadMode::Mmap, LoadMode::Read] {
            let (_, idx, report) =
                load_index_file(&path, &BuildOpts::optimized_only(), mode, VerifyMode::Eager)
                    .expect("load");
            assert!(report.zero_copy);
            assert_eq!(report.bytes, bytes.len());
            let mut sink = mem2_memsim::NoopSink;
            for r in (0..=2 * idx.l_pac).step_by(7) {
                assert_eq!(idx.sa_lookup(r, &mut sink), direct.sa_lookup(r, &mut sink));
            }
            reports.push(report);
        }
        assert!(!reports[2].file_mapped, "Read mode must not map");
        if crate::mmap::mmap_supported() {
            assert!(reports[0].file_mapped && reports[1].file_mapped);
        }
        std::fs::remove_file(&path).ok();
        // a missing file is an I/O error, not a panic
        assert!(matches!(
            load_index_file(
                &dir.join("mem2_definitely_missing.idx"),
                &BuildOpts::optimized_only(),
                LoadMode::Auto,
                VerifyMode::Eager,
            ),
            Err(BundleError::Io(_))
        ));
    }

    #[test]
    fn v3_bundles_migrate_to_v4_with_identical_payloads() {
        let genome = GenomeSpec {
            len: 3_500,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrV3");
        let s = FmIndex::doubled_text(&reference);
        let sa = mem2_suffix::suffix_array(&s);
        let bwt = mem2_suffix::bwt_from_savec(&s, &SaVec::U32(sa.clone()));
        let occ = OccOpt::build(&bwt);
        let v3 = save_bundle(&reference, &sa, &occ).expect("v3 encode");
        assert_eq!(v3[7], 3);
        // migrate: load the v3 bundle, re-save as v4
        let old = load_bundle(&v3).expect("v3 load");
        let v4 =
            save_bundle_v4(&old.reference, &old.sa, old.occ.as_ref().unwrap()).expect("v4 encode");
        assert_eq!(v4[7], 4);
        // both serve byte-identical components
        let (_, idx3) = load_index(&v3, &BuildOpts::optimized_only()).expect("v3 index");
        let (_, idx4) = load_index(&v4, &BuildOpts::optimized_only()).expect("v4 index");
        assert_eq!(idx3.meta, idx4.meta);
        let mut sink = mem2_memsim::NoopSink;
        for r in 0..=2 * idx3.l_pac {
            assert_eq!(idx3.sa_lookup(r, &mut sink), idx4.sa_lookup(r, &mut sink));
        }
        // and a v4 re-save of the migrated bundle is deterministic
        let again = load_bundle(&v4).expect("v4 load");
        let v4b = save_bundle_v4(&again.reference, &again.sa, again.occ.as_ref().unwrap()).unwrap();
        assert_eq!(v4, v4b);
    }

    #[test]
    fn persisted_occ_serves_the_batched_profile_without_rebuild() {
        let genome = GenomeSpec {
            len: 3_000,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrY");
        let direct = FmIndex::build(&reference, &BuildOpts::optimized_only());
        let bytes = build_bundle(&reference).expect("encode");
        let (_, loaded) = load_index(&bytes, &BuildOpts::optimized_only()).expect("load");
        assert!(loaded.occ_orig.is_none());
        assert_eq!(loaded.meta, direct.meta);
        let mut sink = mem2_memsim::NoopSink;
        for r in (-1..=2 * direct.l_pac).step_by(61) {
            assert_eq!(
                loaded.opt().occ4(r, &mut sink),
                direct.opt().occ4(r, &mut sink)
            );
        }
        for r in 0..=2 * direct.l_pac {
            assert_eq!(
                loaded.sa_lookup(r, &mut sink),
                direct.sa_lookup(r, &mut sink)
            );
        }
        // the classic profile needs the η=128 table: rebuild path
        let (_, classic) = load_index(&bytes, &BuildOpts::original_only()).expect("load classic");
        assert!(classic.occ_orig.is_some());
        assert_eq!(classic.meta, direct.meta);
    }

    #[test]
    fn v2_bundles_still_load_through_the_rebuild_path() {
        let genome = GenomeSpec {
            len: 1_500,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrV");
        let s = FmIndex::doubled_text(&reference);
        let sa = mem2_suffix::suffix_array(&s);
        let v2 = save_bundle_v2(&reference, &sa).expect("v2 encode");
        assert_eq!(v2[7], 2);
        let loaded = load_bundle(&v2).expect("v2 load");
        assert!(loaded.occ.is_none(), "v2 has no occ section");
        let (_, idx) = load_index(&v2, &BuildOpts::optimized_only()).expect("v2 index");
        let direct = FmIndex::build(&reference, &BuildOpts::optimized_only());
        assert_eq!(idx.meta, direct.meta);
        let mut sink = mem2_memsim::NoopSink;
        for r in (-1..=2 * direct.l_pac).step_by(43) {
            assert_eq!(
                idx.opt().occ4(r, &mut sink),
                direct.opt().occ4(r, &mut sink)
            );
        }
    }

    #[test]
    fn bundle_preserves_holes_and_multiple_contigs() {
        let recs = mem2_seqio::parse_fasta(">a\nACGTNNNNACGT\n>b\nGGGG\n").expect("parse");
        let reference = Reference::from_fasta(&recs, 3);
        let bytes = build_bundle(&reference).expect("encode");
        let loaded = load_bundle(&bytes).expect("roundtrip");
        assert_eq!(loaded.reference.contigs, reference.contigs);
        assert_eq!(loaded.reference.contigs.holes.len(), 1);
    }

    #[test]
    fn corrupted_bundles_are_rejected() {
        let genome = GenomeSpec {
            len: 300,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("c");
        let bytes = build_bundle(&reference).expect("encode");
        assert!(matches!(
            load_bundle(&bytes[..4]),
            Err(BundleError::BadMagic)
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(load_bundle(&bad), Err(BundleError::BadMagic)));
        assert!(matches!(
            load_bundle(&bytes[..bytes.len() / 2]),
            Err(BundleError::Truncated(_))
        ));
        // a TOC entry pointing past the file is caught by the header
        // CRC before the bogus offset is ever trusted
        let mut toc_bad = bytes.clone();
        let off_pos = 20 + 8; // first entry's offset field
        toc_bad[off_pos..off_pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            load_bundle(&toc_bad),
            Err(BundleError::ChecksumMismatch {
                section: "header",
                ..
            })
        ));
        // an invalid width byte likewise trips the header CRC first
        let mut width_bad = bytes.clone();
        width_bad[8] = 2;
        assert!(matches!(
            load_bundle(&width_bad),
            Err(BundleError::ChecksumMismatch {
                section: "header",
                ..
            })
        ));
    }

    #[test]
    fn v5_flipped_bytes_name_the_failing_section() {
        let genome = GenomeSpec {
            len: 1_000,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrC");
        let bytes = build_bundle(&reference).expect("encode");
        assert_eq!(bytes[7], BUNDLE_VERSION);
        let layout = parse_v4(&bytes).expect("parse");
        let pokes = [
            (TOC_HEADER_LEN + 4, "META"),
            (layout.pac.0 + layout.pac.1 / 2, "PAC"),
            (layout.sa.0 + layout.sa.1 / 2, "SA"),
            (layout.occ.0 + layout.occ.1 / 2, "OCC"),
            (layout.pac.0 - 1, "padding"),
        ];
        for (pos, want) in pokes {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let err = load_bundle(&bad).expect_err("corruption must be rejected");
            match err {
                BundleError::ChecksumMismatch { section, .. } => {
                    assert_eq!(section, want, "flip at byte {pos}");
                }
                other => panic!("flip at byte {pos}: expected checksum error, got {other:?}"),
            }
            // the zero-copy file loader rejects it too
            let owner: RegionOwner = Arc::new(AlignedBytes::from_slice(&bad));
            assert!(load_index_region(
                ByteRegion::whole(owner),
                &BuildOpts::optimized_only(),
                false,
                VerifyMode::Eager,
            )
            .is_err());
        }
        // appended trailing garbage is rejected as well
        let mut grown = bytes.clone();
        grown.push(0xAB);
        assert!(matches!(
            load_bundle(&grown),
            Err(BundleError::Truncated(_))
        ));
    }

    #[test]
    fn first_touch_skips_sections_the_profile_never_reads() {
        let genome = GenomeSpec {
            len: 900,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrT");
        let bytes = build_bundle(&reference).expect("encode");
        let layout = parse_v4(&bytes).expect("parse");
        let mut bad = bytes.clone();
        bad[layout.occ.0 + 7] ^= 0x01;
        // eager: the OCC flip fails any profile
        let owner: RegionOwner = Arc::new(AlignedBytes::from_slice(&bad));
        assert!(matches!(
            load_index_region(
                ByteRegion::whole(owner),
                &BuildOpts::original_only(),
                false,
                VerifyMode::Eager,
            ),
            Err(BundleError::ChecksumMismatch { section: "OCC", .. })
        ));
        // first-touch: the classic profile rebuilds its own table and
        // never consumes OCC, so the flip goes unnoticed…
        let owner: RegionOwner = Arc::new(AlignedBytes::from_slice(&bad));
        assert!(load_index_region(
            ByteRegion::whole(owner),
            &BuildOpts::original_only(),
            false,
            VerifyMode::FirstTouch,
        )
        .is_ok());
        // …while the batched profile, which adopts OCC, still rejects
        let owner: RegionOwner = Arc::new(AlignedBytes::from_slice(&bad));
        assert!(matches!(
            load_index_region(
                ByteRegion::whole(owner),
                &BuildOpts::optimized_only(),
                false,
                VerifyMode::FirstTouch,
            ),
            Err(BundleError::ChecksumMismatch { section: "OCC", .. })
        ));
    }

    #[test]
    fn legacy_bundles_report_unchecksummed() {
        let genome = GenomeSpec {
            len: 700,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrL4");
        let loaded = load_bundle(&build_bundle(&reference).unwrap()).unwrap();
        let v4 = save_bundle_v4(&loaded.reference, &loaded.sa, loaded.occ.as_ref().unwrap())
            .expect("v4 encode");
        assert_eq!(v4[7], 4);
        let owner: RegionOwner = Arc::new(AlignedBytes::from_slice(&v4));
        let (_, _, report) = load_index_region(
            ByteRegion::whole(owner),
            &BuildOpts::optimized_only(),
            false,
            VerifyMode::Eager,
        )
        .expect("v4 load");
        assert_eq!(report.version, 4);
        assert!(!report.checksummed);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let genome = GenomeSpec {
            len: 400,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("chrAW");
        let bytes = build_bundle(&reference).expect("encode");
        let dir = std::env::temp_dir().join(format!("mem2_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ref.idx");
        std::fs::write(&path, b"old garbage").unwrap();
        write_bundle_atomic(&path, &bytes).expect("atomic write");
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers.len(), 1, "temp file left behind: {leftovers:?}");
        // and the result loads clean
        assert!(load_index_file(
            &path,
            &BuildOpts::optimized_only(),
            LoadMode::Auto,
            VerifyMode::Eager
        )
        .is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_versions_are_rejected_cleanly() {
        let reference = GenomeSpec {
            len: 300,
            ..GenomeSpec::default()
        }
        .generate_reference("c");
        let bytes = build_bundle(&reference).expect("encode");
        // the retired v1 layout and a hypothetical future v6 both refuse
        // to parse, with an error naming the version
        for v in [1u8, 6] {
            let mut other = bytes.clone();
            other[7] = v;
            let err = load_bundle(&other).expect_err("version must be rejected");
            assert_eq!(err, BundleError::UnsupportedVersion(v));
            assert!(err.to_string().contains(&format!("version {v}")));
        }
    }

    #[test]
    fn u32_overflow_guard_trips_at_the_boundary() {
        // the check is on positions of the doubled text: 2·l_pac must
        // stay below u32::MAX for the narrow layout
        assert!(flat_sa_fits(1 << 30));
        assert!(flat_sa_fits((u32::MAX as usize - 1) / 2));
        assert!(!flat_sa_fits(u32::MAX as usize / 2 + 1));
        assert!(!flat_sa_fits(u32::MAX as usize));
        assert_eq!(choose_width(u32::MAX as usize, None), IndexWidth::W64);
        let msg = BundleError::TooLarge(u32::MAX as usize * 2).to_string();
        assert!(msg.contains("too large"), "{msg}");
    }
}
