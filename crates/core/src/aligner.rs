//! The public aligner facade.

use mem2_fmindex::{BuildOpts, FmIndex};
use mem2_seqio::{FastqRecord, Reference};

use crate::opts::MemOpts;
use crate::pipeline::{align_prepared, read_to_sam, PipelineContext, PreparedRead, Worker};
use crate::profile::StageTimes;
use crate::sam::SamRecord;

/// Which pipeline organization to run (Figure 2 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workflow {
    /// Original BWA-MEM: per-read processing, η=128 occurrence table,
    /// sampled suffix array, scalar BSW.
    Classic,
    /// The paper's re-organization: stage-batched processing, η=32
    /// cache-line occurrence table with software prefetch, flat suffix
    /// array, inter-task SIMD BSW with length sorting.
    Batched,
}

impl Workflow {
    /// The index components this workflow requires.
    pub fn build_opts(&self) -> BuildOpts {
        match self {
            Workflow::Classic => BuildOpts::original_only(),
            Workflow::Batched => BuildOpts::optimized_only(),
        }
    }
}

/// A ready-to-use aligner: reference + index + options + workflow.
pub struct Aligner {
    /// Aligner options.
    pub opts: MemOpts,
    /// The FM-index.
    pub index: FmIndex,
    /// The reference.
    pub reference: Reference,
    /// Selected workflow.
    pub workflow: Workflow,
}

impl Aligner {
    /// Build an aligner, constructing exactly the index components the
    /// workflow needs.
    pub fn build(reference: Reference, opts: MemOpts, workflow: Workflow) -> Aligner {
        let index = FmIndex::build(&reference, &workflow.build_opts());
        Aligner {
            opts,
            index,
            reference,
            workflow,
        }
    }

    /// Wrap an existing index (it must contain the components the
    /// workflow requires — e.g. a [`BuildOpts::default`] index serves
    /// both workflows).
    pub fn with_index(
        index: FmIndex,
        reference: Reference,
        opts: MemOpts,
        workflow: Workflow,
    ) -> Aligner {
        Aligner {
            opts,
            index,
            reference,
            workflow,
        }
    }

    /// Pipeline context view.
    pub fn context(&self) -> PipelineContext<'_> {
        PipelineContext {
            opts: &self.opts,
            index: &self.index,
            reference: &self.reference,
        }
    }

    /// SAM header for the reference.
    pub fn sam_header(&self) -> String {
        let mut h = String::from("@HD\tVN:1.6\tSO:unsorted\n");
        for c in &self.reference.contigs.contigs {
            h.push_str(&format!("@SQ\tSN:{}\tLN:{}\n", c.name, c.len));
        }
        h.push_str("@PG\tID:mem2\tPN:mem2\tVN:0.1.0\n");
        h
    }

    /// Align reads on the current thread; returns SAM records in input
    /// order and accumulates stage times into `times`.
    pub fn align_reads_timed(
        &self,
        reads: &[FastqRecord],
        times: &mut StageTimes,
    ) -> Vec<SamRecord> {
        let ctx = self.context();
        let mut worker = Worker::new(&self.opts);
        let prepared: Vec<PreparedRead> = reads.iter().map(PreparedRead::from_fastq).collect();
        let regs = align_prepared(&ctx, &mut worker, self.workflow, &prepared);
        let mut out = Vec::new();
        for (read, r) in prepared.iter().zip(&regs) {
            out.extend(read_to_sam(&ctx, read, r, &mut worker.times));
        }
        times.merge(&worker.times);
        out
    }

    /// Align reads on the current thread.
    pub fn align_reads(&self, reads: &[FastqRecord]) -> Vec<SamRecord> {
        let mut times = StageTimes::default();
        self.align_reads_timed(reads, &mut times)
    }

    /// Align a stream of read batches with `n_threads` workers, writing
    /// SAM records (no header) to `out` in input order — the streaming
    /// front end behind `mem2 mem`. See
    /// [`crate::threads::align_stream_parallel`].
    pub fn align_fastq_stream<I, W>(
        &self,
        batches: I,
        n_threads: usize,
        out: &mut W,
    ) -> Result<(crate::threads::StreamSummary, StageTimes), crate::threads::StreamError>
    where
        I: IntoIterator<Item = Result<Vec<FastqRecord>, mem2_seqio::SeqIoError>>,
        I::IntoIter: Send,
        W: std::io::Write,
    {
        crate::threads::align_stream_parallel(self, batches, n_threads, out)
    }
}
