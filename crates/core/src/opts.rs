//! Aligner options — the relevant subset of bwa's `mem_opt_t`, with the
//! same defaults (`mem_opt_init`).

use mem2_bsw::{ScoreParams, SimdChoice};
use mem2_chain::ChainOpts;
use mem2_fmindex::SmemOpts;

/// Full option set for the aligner.
#[derive(Clone, Copy, Debug)]
pub struct MemOpts {
    /// Scoring (match/mismatch/gaps/zdrop/clip penalties).
    pub score: ScoreParams,
    /// Seeding options.
    pub smem: SmemOpts,
    /// Chaining / filtering options.
    pub chain: ChainOpts,
    /// 5' clipping penalty (`-L`, default 5) — the left extension's
    /// end bonus.
    pub pen_clip5: i32,
    /// 3' clipping penalty (default 5) — the right extension's end bonus.
    pub pen_clip3: i32,
    /// Minimum score to output (`-T`, default 30).
    pub t_min_score: i32,
    /// Redundancy overlap threshold for region dedup (default 0.95).
    pub mask_level_redun: f32,
    /// MAPQ length-coefficient threshold (default 50).
    pub mapq_coef_len: f64,
    /// `ln(mapq_coef_len)`.
    pub mapq_coef_fac: f64,
    /// Reads per processing batch in the batched workflow (default 512).
    pub batch_reads: usize,
    /// Reads whose seeding state machines one worker interleaves
    /// (`--seed-batch`, default 16): each pending occurrence query's
    /// software prefetch is issued one full rotation — `seed_batch − 1`
    /// other reads' queries — before its demand load, and the slab's
    /// suffix-array lookups drain through a sliding prefetch window.
    /// SAM bytes are invariant to this value; only memory-level
    /// parallelism changes.
    pub seed_batch: usize,
    /// Reads per scheduling chunk handed to a worker (default 4096).
    pub chunk_reads: usize,
    /// Target bases per streamed ingestion batch (bwa's `-K` chunk size;
    /// default 10 Mbp). Streaming peak memory is O(batch_bases), not
    /// O(file).
    pub batch_bases: usize,
    /// Also emit secondary alignments (bwa's `-a`; default off).
    pub output_all: bool,
    /// Penalty for an unpaired read pair (bwa's `-U`, default 17): a
    /// paired placement is preferred over the two best single-end
    /// placements when its joint score beats `best0 + best1 − pen_unpaired`.
    pub pen_unpaired: i32,
    /// Maximum insert size considered by the per-batch estimator (bwa's
    /// hard `max_ins` cap, default 10 000).
    pub max_ins: i32,
    /// Maximum mate-rescue SW attempts per read end (bwa's `-m`,
    /// default 50).
    pub max_matesw: i32,
    /// Read pairs per paired-end processing batch — the `mem_pestat`
    /// estimation window *and* the scheduling unit, so the PE SAM byte
    /// stream depends on this value only (not on `batch_bases`, thread
    /// count, or the two-file vs interleaved layout). Default 32 768
    /// (~10 Mbp at 2×150 bp).
    pub batch_pairs: usize,
    /// SIMD backend selection for the BSW engines (`--simd`, default
    /// auto: widest detected native backend, portable fallback). SAM
    /// bytes are invariant to this choice — only speed differs.
    pub simd: SimdChoice,
}

impl Default for MemOpts {
    fn default() -> Self {
        let score = ScoreParams::default();
        MemOpts {
            score,
            smem: SmemOpts::default(),
            chain: ChainOpts::default(),
            pen_clip5: 5,
            pen_clip3: 5,
            t_min_score: 30,
            mask_level_redun: 0.95,
            mapq_coef_len: 50.0,
            mapq_coef_fac: (50.0f64).ln(),
            batch_reads: 512,
            seed_batch: mem2_fmindex::DEFAULT_SEED_BATCH,
            chunk_reads: 4096,
            batch_bases: mem2_seqio::DEFAULT_BATCH_BASES,
            output_all: false,
            pen_unpaired: 17,
            max_ins: 10_000,
            max_matesw: 50,
            batch_pairs: mem2_seqio::DEFAULT_BATCH_PAIRS,
            simd: SimdChoice::Auto,
        }
    }
}

impl MemOpts {
    /// bwa's `cal_max_gap`: the longest gap reachable within the scoring
    /// scheme for a flank of length `qlen`, capped at twice the band.
    pub fn cal_max_gap(&self, qlen: i32) -> i32 {
        let l_del = ((qlen as f64 * self.score.a as f64 - self.score.o_del as f64)
            / self.score.e_del as f64
            + 1.0) as i32;
        let l_ins = ((qlen as f64 * self.score.a as f64 - self.score.o_ins as f64)
            / self.score.e_ins as f64
            + 1.0) as i32;
        let l = l_del.max(l_ins).max(1);
        l.min(self.chain.w * 2)
    }

    /// Output-affecting options as `key → value` entries for the
    /// checkpoint fingerprint (`--resume` refuses to continue a run whose
    /// options drifted). Deliberately *excludes* the knobs the pipeline
    /// is byte-invariant to — `simd`, `seed_batch`, `chunk_reads`,
    /// `batch_reads`, `batch_bases`, and the thread count — so a resumed
    /// run may use different hardware or batching without breaking byte
    /// identity. `batch_pairs` is *included*: it defines the PE pestat
    /// window and therefore the PE byte stream.
    pub fn fingerprint_fields(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        let mut f = |k: &str, v: String| out.push((format!("opt.{k}"), v));
        f("score.a", self.score.a.to_string());
        f("score.b", self.score.b.to_string());
        f("score.o_del", self.score.o_del.to_string());
        f("score.e_del", self.score.e_del.to_string());
        f("score.o_ins", self.score.o_ins.to_string());
        f("score.e_ins", self.score.e_ins.to_string());
        f("score.zdrop", self.score.zdrop.to_string());
        f("score.end_bonus", self.score.end_bonus.to_string());
        let mat: Vec<String> = self.score.mat.iter().map(|v| v.to_string()).collect();
        f("score.mat", mat.join(","));
        f("smem.min_seed_len", self.smem.min_seed_len.to_string());
        f("smem.split_factor", format!("{}", self.smem.split_factor));
        f("smem.split_width", self.smem.split_width.to_string());
        f("smem.max_mem_intv", self.smem.max_mem_intv.to_string());
        f("chain.w", self.chain.w.to_string());
        f("chain.max_chain_gap", self.chain.max_chain_gap.to_string());
        f("chain.max_occ", self.chain.max_occ.to_string());
        f("chain.mask_level", format!("{}", self.chain.mask_level));
        f("chain.drop_ratio", format!("{}", self.chain.drop_ratio));
        f(
            "chain.min_chain_weight",
            self.chain.min_chain_weight.to_string(),
        );
        f("chain.min_seed_len", self.chain.min_seed_len.to_string());
        f(
            "chain.max_chain_extend",
            self.chain.max_chain_extend.to_string(),
        );
        f("pen_clip5", self.pen_clip5.to_string());
        f("pen_clip3", self.pen_clip3.to_string());
        f("t_min_score", self.t_min_score.to_string());
        f("mask_level_redun", format!("{}", self.mask_level_redun));
        f("mapq_coef_len", format!("{}", self.mapq_coef_len));
        f("output_all", self.output_all.to_string());
        f("pen_unpaired", self.pen_unpaired.to_string());
        f("max_ins", self.max_ins.to_string());
        f("max_matesw", self.max_matesw.to_string());
        f("batch_pairs", self.batch_pairs.to_string());
        out
    }

    /// bwa's `infer_bw` for CIGAR generation.
    pub fn infer_bw(l1: i32, l2: i32, score: i32, a: i32, q: i32, r: i32) -> i32 {
        if l1 == l2 && l1 * a - score < (q + r - a) * 2 {
            return 0;
        }
        let w = ((l1.min(l2) as f64 * a as f64 - score as f64 - q as f64) / r as f64 + 2.0) as i32;
        w.max((l1 - l2).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_bwa() {
        let o = MemOpts::default();
        assert_eq!(o.score.a, 1);
        assert_eq!(o.score.b, 4);
        assert_eq!(o.score.o_del, 6);
        assert_eq!(o.score.zdrop, 100);
        assert_eq!(o.smem.min_seed_len, 19);
        assert_eq!(o.chain.max_occ, 500);
        assert_eq!(o.t_min_score, 30);
        assert!((o.mapq_coef_fac - 3.912).abs() < 1e-3);
    }

    #[test]
    fn cal_max_gap_caps_at_twice_band() {
        let o = MemOpts::default();
        // short flank: small gap allowance
        assert_eq!(o.cal_max_gap(10), 5); // (10*1-6)/1+1 = 5
                                          // long flank capped at 2w = 200
        assert_eq!(o.cal_max_gap(1000), 200);
        // degenerate flank still allows 1
        assert_eq!(o.cal_max_gap(0), 1);
    }

    #[test]
    fn infer_bw_examples() {
        // perfect same-length alignment needs no band
        assert_eq!(MemOpts::infer_bw(100, 100, 100, 1, 6, 1), 0);
        // length difference forces at least that band
        assert!(MemOpts::infer_bw(100, 110, 80, 1, 6, 1) >= 10);
    }
}
