//! Per-stage wall-time accounting (Table 1 of the paper).
//!
//! Each accumulator carries both summed totals (Table 1's averages) and
//! a log-linear latency histogram per stage, so end-of-run reports and
//! the daemon's STATS/metrics can surface tail percentiles (p50/p90/p99
//! and exact max), not just means. Recording an observation is one
//! `Duration` add plus a few relaxed atomic increments — cheap enough to
//! stay on in production.

use std::time::Duration;

use mem2_obs::{Hist, HistSnapshot};

/// Pipeline stages as profiled in Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// SMEM seeding.
    Smem,
    /// Suffix-array lookup.
    Sal,
    /// Seed chaining and chain filtering.
    Chain,
    /// BSW pre-processing (reference window fetch, job construction,
    /// sorting, SoA conversion).
    BswPre,
    /// Banded Smith-Waterman extension.
    Bsw,
    /// SAM formatting.
    SamForm,
    /// Everything else (region dedup, primary marking, bookkeeping).
    Misc,
}

/// Stage labels in display order.
pub const STAGE_NAMES: [&str; 7] = ["SMEM", "SAL", "CHAIN", "BSW-pre", "BSW", "SAM-FORM", "Misc"];

/// Accumulated per-stage durations plus per-stage latency histograms
/// (microsecond observations, one per `add` call).
///
/// No longer `Copy` (histograms are shared-by-clone `Arc`s): `clone()`
/// aliases the same histogram buckets, which is what the take/merge
/// worker discipline wants. Use `StageTimes::default()` for a fresh
/// independent accumulator.
#[derive(Clone, Debug, Default)]
pub struct StageTimes {
    /// Total time per stage, indexed by `Stage as usize`.
    pub totals: [Duration; 7],
    /// Per-observation latency histogram per stage (values in us).
    pub hists: [Hist; 7],
}

impl StageTimes {
    /// Add a duration to a stage: bumps the stage total and records the
    /// observation (in whole microseconds) in the stage histogram.
    #[inline]
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.totals[stage as usize] += d;
        self.hists[stage as usize].record(d.as_micros() as u64);
    }

    /// Merge another accumulator into this one (totals added,
    /// histograms summed bucket-wise — exact).
    pub fn merge(&mut self, other: &StageTimes) {
        for (a, b) in self.totals.iter_mut().zip(&other.totals) {
            *a += *b;
        }
        for (a, b) in self.hists.iter().zip(&other.hists) {
            a.merge_from(b);
        }
    }

    /// Total across stages.
    pub fn total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Percentage share per stage.
    pub fn percentages(&self) -> [f64; 7] {
        let t = self.total().as_secs_f64();
        let mut out = [0.0; 7];
        if t > 0.0 {
            for (o, d) in out.iter_mut().zip(&self.totals) {
                *o = 100.0 * d.as_secs_f64() / t;
            }
        }
        out
    }

    /// Point-in-time copy of every stage histogram, in display order.
    pub fn snapshots(&self) -> [HistSnapshot; 7] {
        std::array::from_fn(|i| self.hists[i].snapshot())
    }

    /// Render as an aligned two-column table.
    pub fn render(&self, title: &str) -> String {
        let mut s = format!("{title}\n");
        let pct = self.percentages();
        for i in 0..7 {
            s.push_str(&format!(
                "  {:<9} {:>8.3}s {:>6.1}%\n",
                STAGE_NAMES[i],
                self.totals[i].as_secs_f64(),
                pct[i]
            ));
        }
        s.push_str(&format!(
            "  {:<9} {:>8.3}s\n",
            "Total",
            self.total().as_secs_f64()
        ));
        s
    }

    /// Render totals plus per-observation latency percentiles, one row
    /// per stage (the `--profile` report). Stages with no observations
    /// show `-`.
    pub fn render_percentiles(&self, title: &str) -> String {
        let mut s = format!("{title}\n");
        s.push_str(&format!(
            "  {:<9} {:>9} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "stage", "total_s", "%", "calls", "p50_us", "p90_us", "p99_us", "max_us"
        ));
        let pct = self.percentages();
        for i in 0..7 {
            let snap = self.hists[i].snapshot();
            let q = |p: f64| match snap.quantile(p) {
                Some(v) => v.to_string(),
                None => "-".into(),
            };
            s.push_str(&format!(
                "  {:<9} {:>9.3} {:>6.1} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                STAGE_NAMES[i],
                self.totals[i].as_secs_f64(),
                pct[i],
                snap.count,
                q(0.50),
                q(0.90),
                q(0.99),
                if snap.count == 0 {
                    "-".into()
                } else {
                    snap.max.to_string()
                },
            ));
        }
        s.push_str(&format!(
            "  {:<9} {:>9.3}\n",
            "Total",
            self.total().as_secs_f64()
        ));
        s
    }

    /// Render as a JSON object (the `--profile=json` report): per-stage
    /// totals in ms plus percentile summaries; `null` where a stage has
    /// no observations.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\"stages\":{");
        for i in 0..7 {
            if i > 0 {
                s.push(',');
            }
            let snap = self.hists[i].snapshot();
            s.push_str(&format!(
                "\"{}\":{{\"total_ms\":{:.3},\"calls\":{},{}}}",
                STAGE_NAMES[i],
                self.totals[i].as_secs_f64() * 1e3,
                snap.count,
                percentile_fields_us(&snap),
            ));
        }
        s.push_str(&format!(
            "}},\"total_ms\":{:.3}}}",
            self.total().as_secs_f64() * 1e3
        ));
        s
    }
}

/// Render the shared percentile summary fields from a histogram of
/// microsecond observations: `"p50_us":N,...` with `null` when empty.
/// Used by both the `--profile=json` report and the daemon's STATS so
/// the schema stays in one place.
pub fn percentile_fields_us(snap: &HistSnapshot) -> String {
    let q = |p: f64| match snap.quantile(p) {
        Some(v) => v.to_string(),
        None => "null".into(),
    };
    format!(
        "\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}",
        q(0.50),
        q(0.90),
        q(0.99),
        if snap.count == 0 {
            "null".into()
        } else {
            snap.max.to_string()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_merges() {
        let mut a = StageTimes::default();
        a.add(Stage::Smem, Duration::from_millis(300));
        a.add(Stage::Bsw, Duration::from_millis(700));
        let mut b = StageTimes::default();
        b.add(Stage::Smem, Duration::from_millis(200));
        a.merge(&b);
        assert_eq!(a.totals[Stage::Smem as usize], Duration::from_millis(500));
        assert_eq!(a.total(), Duration::from_millis(1200));
        let pct = a.percentages();
        assert!((pct[Stage::Smem as usize] - 41.666).abs() < 0.1);
        let rendered = a.render("Table 1");
        assert!(rendered.contains("SMEM"));
        assert!(rendered.contains("Total"));
    }

    #[test]
    fn empty_times_render_zero() {
        let t = StageTimes::default();
        assert_eq!(t.percentages(), [0.0; 7]);
    }

    #[test]
    fn histograms_track_observations() {
        let mut t = StageTimes::default();
        t.add(Stage::Smem, Duration::from_micros(100));
        t.add(Stage::Smem, Duration::from_micros(300));
        let snap = t.hists[Stage::Smem as usize].snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, 300);
        // p50 estimate bounds the true median (100us) within 1/16.
        let p50 = snap.quantile(0.5).unwrap();
        assert!((100..=107).contains(&p50), "p50={p50}");

        let mut other = StageTimes::default();
        other.add(Stage::Smem, Duration::from_micros(50));
        t.merge(&other);
        assert_eq!(t.hists[Stage::Smem as usize].count(), 3);
    }

    #[test]
    fn clone_aliases_histograms_but_default_is_fresh() {
        let mut t = StageTimes::default();
        let alias = t.clone();
        t.add(Stage::Bsw, Duration::from_micros(10));
        assert_eq!(alias.hists[Stage::Bsw as usize].count(), 1);
        assert_eq!(StageTimes::default().hists[Stage::Bsw as usize].count(), 0);
    }

    #[test]
    fn percentile_reports() {
        let mut t = StageTimes::default();
        t.add(Stage::Chain, Duration::from_micros(400));
        let text = t.render_percentiles("profile");
        assert!(text.contains("p99_us"));
        assert!(text.contains("CHAIN"));
        let json = t.render_json();
        assert!(json.contains("\"CHAIN\":{\"total_ms\":0.400"));
        // untouched stages must render null percentiles, not 0
        assert!(json.contains("\"SMEM\":{\"total_ms\":0.000,\"calls\":0,\"p50_us\":null"));
    }
}
