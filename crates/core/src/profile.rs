//! Per-stage wall-time accounting (Table 1 of the paper).

use std::time::Duration;

/// Pipeline stages as profiled in Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// SMEM seeding.
    Smem,
    /// Suffix-array lookup.
    Sal,
    /// Seed chaining and chain filtering.
    Chain,
    /// BSW pre-processing (reference window fetch, job construction,
    /// sorting, SoA conversion).
    BswPre,
    /// Banded Smith-Waterman extension.
    Bsw,
    /// SAM formatting.
    SamForm,
    /// Everything else (region dedup, primary marking, bookkeeping).
    Misc,
}

/// Stage labels in display order.
pub const STAGE_NAMES: [&str; 7] = ["SMEM", "SAL", "CHAIN", "BSW-pre", "BSW", "SAM-FORM", "Misc"];

/// Accumulated per-stage durations.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimes {
    /// Total time per stage, indexed by `Stage as usize`.
    pub totals: [Duration; 7],
}

impl StageTimes {
    /// Add a duration to a stage.
    #[inline]
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.totals[stage as usize] += d;
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &StageTimes) {
        for (a, b) in self.totals.iter_mut().zip(&other.totals) {
            *a += *b;
        }
    }

    /// Total across stages.
    pub fn total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Percentage share per stage.
    pub fn percentages(&self) -> [f64; 7] {
        let t = self.total().as_secs_f64();
        let mut out = [0.0; 7];
        if t > 0.0 {
            for (o, d) in out.iter_mut().zip(&self.totals) {
                *o = 100.0 * d.as_secs_f64() / t;
            }
        }
        out
    }

    /// Render as an aligned two-column table.
    pub fn render(&self, title: &str) -> String {
        let mut s = format!("{title}\n");
        let pct = self.percentages();
        for i in 0..7 {
            s.push_str(&format!(
                "  {:<9} {:>8.3}s {:>6.1}%\n",
                STAGE_NAMES[i],
                self.totals[i].as_secs_f64(),
                pct[i]
            ));
        }
        s.push_str(&format!(
            "  {:<9} {:>8.3}s\n",
            "Total",
            self.total().as_secs_f64()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_merges() {
        let mut a = StageTimes::default();
        a.add(Stage::Smem, Duration::from_millis(300));
        a.add(Stage::Bsw, Duration::from_millis(700));
        let mut b = StageTimes::default();
        b.add(Stage::Smem, Duration::from_millis(200));
        a.merge(&b);
        assert_eq!(a.totals[Stage::Smem as usize], Duration::from_millis(500));
        assert_eq!(a.total(), Duration::from_millis(1200));
        let pct = a.percentages();
        assert!((pct[Stage::Smem as usize] - 41.666).abs() < 0.1);
        let rendered = a.render("Table 1");
        assert!(rendered.contains("SMEM"));
        assert!(rendered.contains("Total"));
    }

    #[test]
    fn empty_times_render_zero() {
        let t = StageTimes::default();
        assert_eq!(t.percentages(), [0.0; 7]);
    }
}
