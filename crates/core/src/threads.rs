//! Multithreaded driver: crossbeam scoped workers pulling read chunks
//! from an atomic cursor — the same dynamic scheduling the paper gets
//! from OpenMP `schedule(dynamic)`, with one reusable [`Worker`] arena
//! per thread. Output order is deterministic (chunk-indexed slots), so
//! thread count never changes the SAM byte stream.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use mem2_seqio::FastqRecord;

use crate::aligner::{Aligner, Workflow};
use crate::pipeline::{align_batch, align_read_classic, read_to_sam, PreparedRead, Worker};
use crate::profile::StageTimes;
use crate::sam::SamRecord;

/// Align `reads` with `n_threads` workers; returns SAM records in input
/// order plus the summed per-stage times across workers.
pub fn align_reads_parallel(
    aligner: &Aligner,
    reads: &[FastqRecord],
    n_threads: usize,
) -> (Vec<SamRecord>, StageTimes) {
    let n_threads = n_threads.max(1);
    let chunk = aligner.opts.chunk_reads.max(1);
    let n_chunks = reads.len().div_ceil(chunk).max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Vec<SamRecord>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    let total_times = Mutex::new(StageTimes::default());

    crossbeam::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|_| {
                let ctx = aligner.context();
                let mut worker = Worker::new(&aligner.opts);
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let beg = c * chunk;
                    let end = (beg + chunk).min(reads.len());
                    let prepared: Vec<PreparedRead> = reads[beg..end]
                        .iter()
                        .map(PreparedRead::from_fastq)
                        .collect();
                    let mut out = Vec::new();
                    match aligner.workflow {
                        Workflow::Classic => {
                            for read in &prepared {
                                let regs = align_read_classic(&ctx, &mut worker, read);
                                out.extend(read_to_sam(&ctx, read, &regs, &mut worker.times));
                            }
                        }
                        Workflow::Batched => {
                            for batch in prepared.chunks(aligner.opts.batch_reads) {
                                let regs = align_batch(&ctx, &mut worker, batch);
                                for (read, r) in batch.iter().zip(&regs) {
                                    out.extend(read_to_sam(&ctx, read, r, &mut worker.times));
                                }
                            }
                        }
                    }
                    *slots[c].lock() = out;
                }
                total_times.lock().merge(&worker.times);
            });
        }
    })
    .expect("worker thread panicked");

    let mut all = Vec::new();
    for slot in slots {
        all.append(&mut slot.into_inner());
    }
    (all, total_times.into_inner())
}
