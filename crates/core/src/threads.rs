//! Multithreaded drivers.
//!
//! [`align_reads_parallel`] — in-memory: crossbeam scoped workers pulling
//! read chunks from an atomic cursor — the same dynamic scheduling the
//! paper gets from OpenMP `schedule(dynamic)`, with one reusable
//! [`Worker`] arena per thread. Output order is deterministic
//! (chunk-indexed slots), so thread count never changes the SAM byte
//! stream.
//!
//! [`align_stream_parallel`] — streaming: a producer thread decodes and
//! parses ingestion batches (so gzip inflate of batch N+1 overlaps
//! alignment of batch N — double buffering via a bounded channel), worker
//! threads align them, and the caller's thread writes SAM in input order.
//! Peak resident read memory is O(queue_depth + n_threads) batches, never
//! O(file).

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};

use parking_lot::Mutex;

use mem2_seqio::{FastqRecord, SeqIoError};

use crate::aligner::Aligner;
use crate::pipeline::{align_prepared, read_to_sam, PreparedRead, Worker};
use crate::profile::StageTimes;
use crate::sam::SamRecord;

/// Align `reads` with `n_threads` workers; returns SAM records in input
/// order plus the summed per-stage times across workers.
pub fn align_reads_parallel(
    aligner: &Aligner,
    reads: &[FastqRecord],
    n_threads: usize,
) -> (Vec<SamRecord>, StageTimes) {
    let n_threads = n_threads.max(1);
    let chunk = aligner.opts.chunk_reads.max(1);
    let n_chunks = reads.len().div_ceil(chunk).max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Vec<SamRecord>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    let total_times = Mutex::new(StageTimes::default());

    crossbeam::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|_| {
                let ctx = aligner.context();
                let mut worker = Worker::new(&aligner.opts);
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let beg = c * chunk;
                    let end = (beg + chunk).min(reads.len());
                    let prepared: Vec<PreparedRead> = reads[beg..end]
                        .iter()
                        .map(PreparedRead::from_fastq)
                        .collect();
                    let regs = align_prepared(&ctx, &mut worker, aligner.workflow, &prepared);
                    let mut out = Vec::new();
                    for (read, r) in prepared.iter().zip(&regs) {
                        out.extend(read_to_sam(&ctx, read, r, &mut worker.times));
                    }
                    *slots[c].lock() = out;
                }
                total_times.lock().merge(&worker.times);
            });
        }
    })
    .expect("worker thread panicked");

    let mut all = Vec::new();
    for slot in slots {
        all.append(&mut slot.into_inner());
    }
    (all, total_times.into_inner())
}

/// How many decoded batches the producer may queue ahead of the workers:
/// the classic double buffer (decode N+1 while N aligns), bounding
/// resident read memory at `STREAM_QUEUE_DEPTH + n_threads` batches.
const STREAM_QUEUE_DEPTH: usize = 2;

/// Reorder gate: workers holding results for batch `idx` wait until
/// `idx` falls within a fixed window of the writer's cursor before
/// shipping them. Without it, one slow batch would let the writer's
/// reorder buffer absorb every later batch — O(file) memory under
/// worker skew. The worker holding the writer's next batch always
/// passes (its index equals the cursor), so progress is guaranteed.
struct OrderGate {
    /// Next batch index the writer will emit; `usize::MAX` = released
    /// (shutdown), every waiter passes.
    cursor: std::sync::Mutex<usize>,
    cv: std::sync::Condvar,
}

impl OrderGate {
    fn new() -> Self {
        OrderGate {
            cursor: std::sync::Mutex::new(0),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Block until `idx < cursor + window` (or the gate is released).
    fn wait_within(&self, idx: usize, window: usize) {
        let mut cur = self.cursor.lock().expect("gate poisoned");
        while *cur != usize::MAX && idx >= *cur + window {
            cur = self.cv.wait(cur).expect("gate poisoned");
        }
    }

    /// Publish a new writer cursor, waking blocked workers.
    fn advance(&self, next: usize) {
        *self.cursor.lock().expect("gate poisoned") = next;
        self.cv.notify_all();
    }

    /// Let every waiter through (shutdown path).
    fn release(&self) {
        self.advance(usize::MAX);
    }
}

/// Error from the streaming driver: either the input stream failed
/// (I/O, gzip, FASTQ parse) or the SAM sink did.
#[derive(Debug)]
pub enum StreamError {
    /// Reading/decoding/parsing the FASTQ stream failed.
    Input(SeqIoError),
    /// Writing SAM records failed.
    Output(std::io::Error),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Input(e) => write!(f, "reading input: {e}"),
            StreamError::Output(e) => write!(f, "writing SAM: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<SeqIoError> for StreamError {
    fn from(e: SeqIoError) -> Self {
        StreamError::Input(e)
    }
}

/// Counters returned by a completed streaming run.
#[derive(Debug, Default, Clone, Copy)]
pub struct StreamSummary {
    /// Reads consumed from the input stream.
    pub reads: usize,
    /// SAM records written.
    pub records: usize,
    /// Ingestion batches processed.
    pub batches: usize,
}

/// Post-flush callback run on the *writer* thread each time the in-order
/// cursor advances (i.e. after one or more whole batches hit `out`).
/// The checkpoint journal hooks in here: flush/fsync the sink, then
/// persist the batch sequence number from the [`StreamSummary`]. An
/// `Err` aborts the run as a [`StreamError::Output`]. Workers are
/// already unblocked (the reorder gate advances first), so a slow fsync
/// costs pipeline depth, not worker stalls.
pub type FlushHook<'a, W> = &'a mut dyn FnMut(&mut W, &StreamSummary) -> std::io::Result<()>;

/// Align a stream of read batches with `n_threads` workers, writing SAM
/// records to `out` in input order.
///
/// `batches` is typically a [`mem2_seqio::BatchReader`]; any iterator of
/// batch results works (each batch becomes one scheduling unit, so batch
/// size trades load-balance granularity against channel overhead). The
/// producer runs on its own thread: with gzipped input, inflate+parse of
/// the next batch overlaps alignment of the current one.
///
/// Output is byte-identical to [`align_reads_parallel`] on the
/// concatenated batches, for any thread count and any batch partition —
/// per-read results don't depend on batch boundaries (the invariant the
/// golden and cli_smoke tests pin).
pub fn align_stream_parallel<I, W>(
    aligner: &Aligner,
    batches: I,
    n_threads: usize,
    out: &mut W,
) -> Result<(StreamSummary, StageTimes), StreamError>
where
    I: IntoIterator<Item = Result<Vec<FastqRecord>, SeqIoError>>,
    I::IntoIter: Send,
    W: Write,
{
    align_stream_parallel_flush(aligner, batches, n_threads, out, None)
}

/// [`align_stream_parallel`] with a checkpoint [`FlushHook`] (the
/// `--checkpoint` path of `mem2 mem`).
pub fn align_stream_parallel_flush<I, W>(
    aligner: &Aligner,
    batches: I,
    n_threads: usize,
    out: &mut W,
    on_flush: Option<FlushHook<'_, W>>,
) -> Result<(StreamSummary, StageTimes), StreamError>
where
    I: IntoIterator<Item = Result<Vec<FastqRecord>, SeqIoError>>,
    I::IntoIter: Send,
    W: Write,
{
    stream_batches_parallel_flush(
        &aligner.opts,
        batches,
        n_threads,
        out,
        on_flush,
        |batch: &Vec<FastqRecord>| batch.len(),
        |worker, records| {
            let ctx = aligner.context();
            let prepared: Vec<PreparedRead> = records
                .into_iter()
                .map(PreparedRead::from_fastq_owned)
                .collect();
            let regs = align_prepared(&ctx, worker, aligner.workflow, &prepared);
            let mut recs = Vec::new();
            for (read, r) in prepared.iter().zip(&regs) {
                recs.extend(read_to_sam(&ctx, read, r, &mut worker.times));
            }
            recs
        },
    )
}

/// The generic double-buffered batch-stream driver behind
/// [`align_stream_parallel`] (and the paired-end driver in
/// `mem2-pairing`): a producer thread pulls batches of any type `T` off
/// the input iterator, worker threads turn each batch into SAM records
/// with `process`, and the calling thread writes batches in input order.
///
/// `count_reads` reports how many reads a batch holds (for the summary);
/// `process` runs on worker threads against a per-thread [`Worker`]
/// arena. Output order is the input batch order regardless of thread
/// count, and the reorder buffer is bounded even under worker skew.
pub fn stream_batches_parallel<T, I, W, C, P>(
    opts: &crate::opts::MemOpts,
    batches: I,
    n_threads: usize,
    out: &mut W,
    count_reads: C,
    process: P,
) -> Result<(StreamSummary, StageTimes), StreamError>
where
    T: Send,
    I: IntoIterator<Item = Result<T, SeqIoError>>,
    I::IntoIter: Send,
    W: Write,
    C: Fn(&T) -> usize + Sync,
    P: Fn(&mut Worker, T) -> Vec<SamRecord> + Sync,
{
    stream_batches_parallel_flush(opts, batches, n_threads, out, None, count_reads, process)
}

/// [`stream_batches_parallel`] with an optional [`FlushHook`] invoked on
/// the writer thread after each in-order flush — the checkpoint journal's
/// attachment point. The hook runs on the calling thread (the crossbeam
/// scope's closure executes there), so it may borrow non-`Send` state.
pub fn stream_batches_parallel_flush<T, I, W, C, P>(
    opts: &crate::opts::MemOpts,
    batches: I,
    n_threads: usize,
    out: &mut W,
    on_flush: Option<FlushHook<'_, W>>,
    count_reads: C,
    process: P,
) -> Result<(StreamSummary, StageTimes), StreamError>
where
    T: Send,
    I: IntoIterator<Item = Result<T, SeqIoError>>,
    I::IntoIter: Send,
    W: Write,
    C: Fn(&T) -> usize + Sync,
    P: Fn(&mut Worker, T) -> Vec<SamRecord> + Sync,
{
    let n_threads = n_threads.max(1);
    let batches = batches.into_iter();
    let (batch_tx, batch_rx) = sync_channel::<(usize, T)>(STREAM_QUEUE_DEPTH);
    let batch_rx = Mutex::new(batch_rx);
    let (res_tx, res_rx) = sync_channel::<(usize, Vec<SamRecord>)>(n_threads + STREAM_QUEUE_DEPTH);
    let input_err: Mutex<Option<SeqIoError>> = Mutex::new(None);
    let reads_in = AtomicUsize::new(0);
    let total_times = Mutex::new(StageTimes::default());
    let cancelled = AtomicBool::new(false);
    let gate = OrderGate::new();
    // completed batches a worker may run ahead of the writer: enough to
    // keep every worker busy, small enough to cap the reorder buffer
    let reorder_window = n_threads + STREAM_QUEUE_DEPTH;
    let mut summary = StreamSummary::default();
    let mut result: Result<(), StreamError> = Ok(());

    crossbeam::thread::scope(|scope| {
        // -- producer: decode/parse batches, keep the queue fed --
        scope.spawn(|_| {
            let mut idx = 0usize;
            for item in batches {
                // stop decoding promptly once the writer has failed —
                // without this, `mem2 ... | head` would inflate and
                // parse the whole remaining file into a dead pipe
                if cancelled.load(Ordering::Relaxed) {
                    break;
                }
                match item {
                    Ok(batch) => {
                        reads_in.fetch_add(count_reads(&batch), Ordering::Relaxed);
                        // send fails only when the consumer side tore down
                        // early (write error); just stop producing
                        if batch_tx.send((idx, batch)).is_err() {
                            break;
                        }
                        idx += 1;
                    }
                    Err(e) => {
                        *input_err.lock() = Some(e);
                        break;
                    }
                }
            }
            drop(batch_tx); // closes the queue → workers drain and exit
        });

        // -- workers: pull a batch, align it, ship indexed results --
        for _ in 0..n_threads {
            let res_tx = res_tx.clone();
            scope.spawn(|_| {
                let res_tx = res_tx; // move the clone, borrow the rest
                let mut worker = Worker::new(opts);
                loop {
                    // hold the lock across recv: exactly one worker waits
                    // on the channel, the rest queue on the mutex
                    let msg = batch_rx.lock().recv();
                    let Ok((idx, batch)) = msg else { break };
                    let recs = process(&mut worker, batch);
                    // stay within the reorder window so the writer's
                    // pending map is bounded even under batch skew
                    gate.wait_within(idx, reorder_window);
                    if res_tx.send((idx, recs)).is_err() {
                        break; // writer tore down early
                    }
                }
                total_times.lock().merge(&worker.times);
            });
        }
        drop(res_tx); // writer's recv ends once all workers finish

        // -- writer (this thread): reorder by batch index, emit in order --
        result = write_in_order(res_rx, out, &gate, &mut summary, on_flush);
        if result.is_err() {
            // tear down: stop the producer, let gated workers through
            // (their sends fail, ending them), and drain the batch queue
            // so the producer's bounded sends complete
            cancelled.store(true, Ordering::Relaxed);
            gate.release();
            while batch_rx.lock().recv().is_ok() {}
        }
    })
    .expect("stream worker panicked");

    if let Some(e) = input_err.into_inner() {
        // input failure wins over a secondary write error: it's the root
        // cause (partial SAM may already be on the output)
        return Err(StreamError::Input(e));
    }
    result?;
    summary.reads = reads_in.into_inner();
    Ok((summary, total_times.into_inner()))
}

/// Drain worker results, writing batches in input order and publishing
/// the cursor through the gate. The gate caps `pending` at the reorder
/// window. On a write error the receiver is dropped, which unblocks
/// workers/producer via their failed sends (the caller releases the
/// gate).
fn write_in_order<W: Write>(
    res_rx: Receiver<(usize, Vec<SamRecord>)>,
    out: &mut W,
    gate: &OrderGate,
    summary: &mut StreamSummary,
    mut on_flush: Option<FlushHook<'_, W>>,
) -> Result<(), StreamError> {
    let mut pending: BTreeMap<usize, Vec<SamRecord>> = BTreeMap::new();
    let mut next = 0usize;
    while let Ok((idx, recs)) = res_rx.recv() {
        pending.insert(idx, recs);
        let before = next;
        while let Some(recs) = pending.remove(&next) {
            next += 1;
            for rec in &recs {
                writeln!(out, "{}", rec.to_line()).map_err(StreamError::Output)?;
            }
            summary.records += recs.len();
            summary.batches += 1;
        }
        // unblock gated workers before any checkpoint fsync below
        gate.advance(next);
        if next > before {
            if let Some(hook) = on_flush.as_mut() {
                hook(out, summary).map_err(StreamError::Output)?;
            }
        }
    }
    Ok(())
}
