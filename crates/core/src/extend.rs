//! Seed extension orchestration — bwa's `mem_chain2aln`, factored so the
//! same accept/skip semantics drive two execution strategies:
//!
//! * the **classic** path computes each extension on demand with the
//!   scalar kernel (original BWA-MEM behaviour: a seed that the
//!   containment test rejects is never extended);
//! * the **batched** path (paper §5.3.2) extends *every* seed of a read
//!   up front with the vectorized engine and then replays the identical
//!   accept/skip logic against the precomputed results, discarding the
//!   rejected ones — the paper's ≈14% wasted extensions, traded for SIMD
//!   efficiency.
//!
//! Both paths therefore produce identical alignment regions.

use mem2_bsw::{extend_scalar, ExtendJob, ExtendResult, ScoreParams};
use mem2_chain::{Chain, Seed};
use mem2_seqio::{ContigSet, PackedSeq};

use crate::opts::MemOpts;
use crate::region::AlnReg;

/// bwa's `MAX_BAND_TRY`: band doubles at most once.
pub const MAX_BAND_TRY: usize = 2;

/// Per-chain extension context: reference window and seed ordering.
#[derive(Clone, Debug)]
pub struct ChainPlan {
    /// Window begin in doubled coordinates.
    pub rmax0: i64,
    /// Window end.
    pub rmax1: i64,
    /// Fetched reference window `[rmax0, rmax1)`.
    pub rseq: Vec<u8>,
    /// Seed indices sorted by (score, index) ascending; extension
    /// iterates from the back (best seed first), like bwa's `srt`.
    pub order: Vec<u32>,
}

/// Compute the reference window and seed order for a chain
/// (the head of `mem_chain2aln`).
pub fn plan_chain(
    opts: &MemOpts,
    l_pac: i64,
    l_query: i32,
    chain: &Chain,
    contigs: &ContigSet,
    pac: &PackedSeq,
) -> ChainPlan {
    debug_assert!(!chain.seeds.is_empty());
    let mut rmax0 = 2 * l_pac;
    let mut rmax1 = 0i64;
    for t in &chain.seeds {
        let b = t.rbeg - (t.qbeg as i64 + opts.cal_max_gap(t.qbeg) as i64);
        let flank = l_query - t.qend();
        let e = t.rend() + (flank as i64 + opts.cal_max_gap(flank) as i64);
        rmax0 = rmax0.min(b);
        rmax1 = rmax1.max(e);
    }
    rmax0 = rmax0.max(0);
    rmax1 = rmax1.min(2 * l_pac);
    if rmax0 < l_pac && l_pac < rmax1 {
        // the window crosses the forward-reverse boundary: all seeds are
        // on one strand, so clip to that side
        if chain.seeds[0].rbeg < l_pac {
            rmax1 = l_pac;
        } else {
            rmax0 = l_pac;
        }
    }
    // clip to the chain's contig (bwa's `bns_fetch_seq`), so extension can
    // never run across a contig boundary in the concatenated sequence
    if let Some((far_beg, far_end)) =
        contigs.contig_image(chain.rid, l_pac, chain.seeds[0].rbeg >= l_pac)
    {
        rmax0 = rmax0.max(far_beg);
        rmax1 = rmax1.min(far_end);
    }
    let rseq = pac.fetch2(rmax0 as usize, rmax1 as usize);
    let mut order: Vec<u32> = (0..chain.seeds.len() as u32).collect();
    order.sort_by_key(|&i| (chain.seeds[i as usize].score, i));
    ChainPlan {
        rmax0,
        rmax1,
        rseq,
        order,
    }
}

/// Build the left-extension job of a seed (reversed flanks), or `None`
/// when the seed starts at the query's first base.
pub fn left_job(opts: &MemOpts, query: &[u8], seed: &Seed, plan: &ChainPlan) -> Option<ExtendJob> {
    if seed.qbeg == 0 {
        return None;
    }
    let qs: Vec<u8> = query[..seed.qbeg as usize].iter().rev().copied().collect();
    let tmp = (seed.rbeg - plan.rmax0) as usize;
    let rs: Vec<u8> = plan.rseq[..tmp].iter().rev().copied().collect();
    Some(ExtendJob::new(
        qs,
        rs,
        seed.len * opts.score.a,
        opts.chain.w,
    ))
}

/// Build the right-extension job of a seed given the score after left
/// extension, or `None` when the seed reaches the query's last base.
pub fn right_job(
    opts: &MemOpts,
    query: &[u8],
    seed: &Seed,
    plan: &ChainPlan,
    sc0: i32,
) -> Option<ExtendJob> {
    let qe = seed.qend();
    if qe == query.len() as i32 {
        return None;
    }
    let re = (seed.rend() - plan.rmax0) as usize;
    Some(ExtendJob::new(
        query[qe as usize..].to_vec(),
        plan.rseq[re..].to_vec(),
        sc0,
        opts.chain.w,
    ))
}

/// The band-doubling retry loop around one extension
/// (`for (i = 0; i < MAX_BAND_TRY; ++i) ...` in `mem_chain2aln`).
/// Returns the accepted result and the band width actually used.
pub fn extend_with_retries<F>(w0: i32, mut run: F) -> (ExtendResult, i32)
where
    F: FnMut(i32) -> ExtendResult,
{
    let mut prev_score = -1;
    let mut res = ExtendResult::default();
    let mut aw = w0;
    for i in 0..MAX_BAND_TRY {
        aw = w0 << i;
        res = run(aw);
        if res.score == prev_score || res.max_off < (aw >> 1) + (aw >> 2) {
            break;
        }
        prev_score = res.score;
    }
    (res, aw)
}

/// Does a round-0 result require the doubled-band retry?
pub fn needs_band_retry(res: &ExtendResult, w0: i32) -> bool {
    // round 0's `prev` is −1, which a real score can never equal
    res.max_off >= (w0 >> 1) + (w0 >> 2)
}

/// Both halves of one seed's extension.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeedExtension {
    /// Left-extension result and band used, if a left flank exists.
    pub left: Option<(ExtendResult, i32)>,
    /// Right-extension result and band used, if a right flank exists.
    pub right: Option<(ExtendResult, i32)>,
}

impl SeedExtension {
    /// The score entering right extension (`sc0`).
    pub fn score_after_left(&self, opts: &MemOpts, seed: &Seed) -> i32 {
        self.left.map_or(seed.len * opts.score.a, |(r, _)| r.score)
    }
}

/// Provider of seed extensions, on demand (classic) or precomputed
/// (batched).
pub trait SeedExtensionSource {
    /// Extension record for the seed at `rank` within the plan's order.
    fn get(
        &mut self,
        chain_id: usize,
        rank: usize,
        seed: &Seed,
        query: &[u8],
        plan: &ChainPlan,
    ) -> SeedExtension;
}

/// Classic on-demand scalar extension.
pub struct ScalarSource<'a> {
    /// Aligner options.
    pub opts: &'a MemOpts,
}

/// Compute one seed's extension with the scalar kernel (including
/// retries) — the definition both pipelines must match.
pub fn compute_seed_extension_scalar(
    opts: &MemOpts,
    seed: &Seed,
    query: &[u8],
    plan: &ChainPlan,
) -> SeedExtension {
    let run = |params: &ScoreParams, job: &ExtendJob, w: i32| {
        let mut j = job.clone();
        j.w = w;
        extend_scalar(params, &j)
    };
    let mut p5 = opts.score;
    p5.end_bonus = opts.pen_clip5;
    let left = left_job(opts, query, seed, plan)
        .map(|job| extend_with_retries(opts.chain.w, |w| run(&p5, &job, w)));
    let sc0 = left.map_or(seed.len * opts.score.a, |(r, _)| r.score);
    let mut p3 = opts.score;
    p3.end_bonus = opts.pen_clip3;
    let right = right_job(opts, query, seed, plan, sc0)
        .map(|job| extend_with_retries(opts.chain.w, |w| run(&p3, &job, w)));
    SeedExtension { left, right }
}

impl SeedExtensionSource for ScalarSource<'_> {
    fn get(
        &mut self,
        _chain_id: usize,
        _rank: usize,
        seed: &Seed,
        query: &[u8],
        plan: &ChainPlan,
    ) -> SeedExtension {
        compute_seed_extension_scalar(self.opts, seed, query, plan)
    }
}

/// Precomputed extensions for one read: `records[chain_id][rank]`.
pub struct PrecomputedSource {
    /// The precomputed table.
    pub records: Vec<Vec<SeedExtension>>,
}

impl SeedExtensionSource for PrecomputedSource {
    fn get(
        &mut self,
        chain_id: usize,
        rank: usize,
        _seed: &Seed,
        _query: &[u8],
        _plan: &ChainPlan,
    ) -> SeedExtension {
        self.records[chain_id][rank]
    }
}

/// The accept/skip replay of `mem_chain2aln`: walk seeds best-first,
/// skip seeds contained in already-accepted regions (unless an
/// overlapping extended seed suggests a different alignment), extend the
/// rest and assemble [`AlnReg`]s into `av`.
pub fn chain_to_regions<S: SeedExtensionSource>(
    opts: &MemOpts,
    l_query: i32,
    query: &[u8],
    chain: &Chain,
    chain_id: usize,
    plan: &ChainPlan,
    src: &mut S,
    av: &mut Vec<AlnReg>,
) {
    let n = chain.seeds.len();
    let mut extended = vec![false; n];
    for k in (0..n).rev() {
        let s = chain.seeds[plan.order[k] as usize];

        // has an equivalent extension already been made?
        let mut contained = false;
        for p in av.iter() {
            if s.rbeg < p.rb || s.rend() > p.re || s.qbeg < p.qb || s.qend() > p.qe {
                continue; // not fully contained
            }
            if (s.len - p.seedlen0) as f64 > 0.1 * l_query as f64 {
                continue; // this seed may give a better alignment
            }
            // region ahead of the seed
            let qd = s.qbeg - p.qb;
            let rd = s.rbeg - p.rb;
            let max_gap = opts.cal_max_gap(qd.min(rd as i32));
            let w = max_gap.min(p.w) as i64;
            if (qd as i64 - rd) < w && (rd - qd as i64) < w {
                contained = true;
                break;
            }
            // region behind the seed
            let qd = p.qe - s.qend();
            let rd = p.re - s.rend();
            let max_gap = opts.cal_max_gap(qd.min(rd as i32));
            let w = max_gap.min(p.w) as i64;
            if (qd as i64 - rd) < w && (rd - qd as i64) < w {
                contained = true;
                break;
            }
        }
        if contained {
            // confirm against overlapping already-extended seeds: a long
            // overlapping seed on a different diagonal means the seed may
            // still lead to a different alignment
            let mut has_overlap = false;
            for (i, was_extended) in extended.iter().enumerate().skip(k + 1) {
                if !*was_extended {
                    continue;
                }
                let t = chain.seeds[plan.order[i] as usize];
                if (t.len as f64) < s.len as f64 * 0.95 {
                    continue;
                }
                if s.qbeg <= t.qbeg
                    && s.qend() - t.qbeg >= s.len >> 2
                    && (t.qbeg - s.qbeg) as i64 != t.rbeg - s.rbeg
                {
                    has_overlap = true;
                    break;
                }
                if t.qbeg <= s.qbeg
                    && t.qend() - s.qbeg >= s.len >> 2
                    && (s.qbeg - t.qbeg) as i64 != s.rbeg - t.rbeg
                {
                    has_overlap = true;
                    break;
                }
            }
            if !has_overlap {
                continue; // skip extension; `extended[k]` stays false
            }
        }
        extended[k] = true;
        let ext = src.get(chain_id, k, &s, query, plan);

        let mut a = AlnReg {
            rid: chain.rid as i32,
            w: opts.chain.w,
            score: -1,
            truesc: -1,
            seedlen0: s.len,
            frac_rep: chain.frac_rep,
            secondary: -1,
            ..Default::default()
        };
        let mut aw0 = opts.chain.w;
        let mut aw1 = opts.chain.w;

        if s.qbeg > 0 {
            let (res, aw) = ext.left.expect("left flank exists");
            aw0 = aw;
            a.score = res.score;
            if res.gscore <= 0 || res.gscore <= a.score - opts.pen_clip5 {
                // local extension wins over clipped to-end extension
                a.qb = s.qbeg - res.qle;
                a.rb = s.rbeg - res.tle as i64;
                a.truesc = a.score;
            } else {
                a.qb = 0;
                a.rb = s.rbeg - res.gtle as i64;
                a.truesc = res.gscore;
            }
        } else {
            a.score = s.len * opts.score.a;
            a.truesc = a.score;
            a.qb = 0;
            a.rb = s.rbeg;
        }

        if s.qend() != l_query {
            let sc0 = a.score;
            let (res, aw) = ext.right.expect("right flank exists");
            aw1 = aw;
            a.score = res.score;
            let qe = s.qend();
            let re = s.rend() - plan.rmax0;
            if res.gscore <= 0 || res.gscore <= a.score - opts.pen_clip3 {
                a.qe = qe + res.qle;
                a.re = plan.rmax0 + re + res.tle as i64;
                a.truesc += a.score - sc0;
            } else {
                a.qe = l_query;
                a.re = plan.rmax0 + re + res.gtle as i64;
                a.truesc += res.gscore - sc0;
            }
        } else {
            a.qe = l_query;
            a.re = s.rend();
        }

        a.seedcov = chain
            .seeds
            .iter()
            .filter(|t| t.qbeg >= a.qb && t.qend() <= a.qe && t.rbeg >= a.rb && t.rend() <= a.re)
            .map(|t| t.len)
            .sum();
        a.w = aw0.max(aw1);
        av.push(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem2_seqio::PackedSeq;

    /// One contig covering the whole packed sequence.
    fn one_contig(len: usize) -> ContigSet {
        ContigSet {
            contigs: vec![mem2_seqio::refseq::ContigAnn {
                name: "c0".into(),
                offset: 0,
                len,
            }],
            holes: vec![],
        }
    }

    fn mk_query_ref() -> (Vec<u8>, PackedSeq) {
        // reference: 200 bases; query = ref[50..130] with one mismatch
        let reference: Vec<u8> = (0..200).map(|i| ((i * 7 + 3) % 4) as u8).collect();
        let mut query = reference[50..130].to_vec();
        query[40] = (query[40] + 1) & 3;
        (query, PackedSeq::from_codes(&reference))
    }

    fn mk_chain(seed: Seed) -> Chain {
        Chain {
            pos: seed.rbeg,
            seeds: vec![seed],
            rid: 0,
            w: 0,
            kept: 3,
            first: -1,
            frac_rep: 0.0,
        }
    }

    #[test]
    fn single_seed_extends_to_full_read() {
        let (query, pac) = mk_query_ref();
        let opts = MemOpts::default();
        // seed: query[0..30) matches ref[50..80)
        let seed = Seed {
            rbeg: 50,
            qbeg: 0,
            len: 30,
            score: 30,
        };
        let chain = mk_chain(seed);
        let plan = plan_chain(
            &opts,
            pac.len() as i64,
            query.len() as i32,
            &chain,
            &one_contig(pac.len()),
            &pac,
        );
        let mut av = Vec::new();
        let mut src = ScalarSource { opts: &opts };
        chain_to_regions(
            &opts,
            query.len() as i32,
            &query,
            &chain,
            0,
            &plan,
            &mut src,
            &mut av,
        );
        assert_eq!(av.len(), 1);
        let a = &av[0];
        assert_eq!(a.qb, 0);
        assert_eq!(a.qe, 80);
        assert_eq!(a.rb, 50);
        assert_eq!(a.re, 130);
        // 79 matches + 1 mismatch = 79 - 4 = 75
        assert_eq!(a.score, 75);
        assert_eq!(a.seedcov, 30);
    }

    #[test]
    fn contained_second_seed_is_skipped() {
        let (query, pac) = mk_query_ref();
        let opts = MemOpts::default();
        let big = Seed {
            rbeg: 50,
            qbeg: 0,
            len: 40,
            score: 40,
        };
        let small = Seed {
            rbeg: 60,
            qbeg: 10,
            len: 20,
            score: 20,
        }; // same diagonal, contained
        let chain = Chain {
            pos: 50,
            seeds: vec![big, small],
            rid: 0,
            w: 0,
            kept: 3,
            first: -1,
            frac_rep: 0.0,
        };
        let plan = plan_chain(
            &opts,
            pac.len() as i64,
            query.len() as i32,
            &chain,
            &one_contig(pac.len()),
            &pac,
        );
        let mut av = Vec::new();
        let mut src = ScalarSource { opts: &opts };
        chain_to_regions(
            &opts,
            query.len() as i32,
            &query,
            &chain,
            0,
            &plan,
            &mut src,
            &mut av,
        );
        assert_eq!(
            av.len(),
            1,
            "contained same-diagonal seed must not produce a region"
        );
    }

    #[test]
    fn precomputed_source_replays_identically() {
        let (query, pac) = mk_query_ref();
        let opts = MemOpts::default();
        let seeds = vec![
            Seed {
                rbeg: 50,
                qbeg: 0,
                len: 30,
                score: 30,
            },
            Seed {
                rbeg: 95,
                qbeg: 45,
                len: 25,
                score: 25,
            },
        ];
        let chain = Chain {
            pos: 50,
            seeds,
            rid: 0,
            w: 0,
            kept: 3,
            first: -1,
            frac_rep: 0.0,
        };
        let plan = plan_chain(
            &opts,
            pac.len() as i64,
            query.len() as i32,
            &chain,
            &one_contig(pac.len()),
            &pac,
        );

        // classic
        let mut av_classic = Vec::new();
        chain_to_regions(
            &opts,
            query.len() as i32,
            &query,
            &chain,
            0,
            &plan,
            &mut ScalarSource { opts: &opts },
            &mut av_classic,
        );
        // batched: precompute EVERY seed (even ones the replay skips)
        let records: Vec<SeedExtension> = plan
            .order
            .iter()
            .map(|&i| compute_seed_extension_scalar(&opts, &chain.seeds[i as usize], &query, &plan))
            .collect();
        let mut av_batched = Vec::new();
        chain_to_regions(
            &opts,
            query.len() as i32,
            &query,
            &chain,
            0,
            &plan,
            &mut PrecomputedSource {
                records: vec![records],
            },
            &mut av_batched,
        );
        assert_eq!(av_classic, av_batched);
    }

    #[test]
    fn retry_logic_matches_direct_loop() {
        // contrived run function with controllable max_off
        let outcomes = [
            ExtendResult {
                score: 10,
                max_off: 100,
                ..Default::default()
            },
            ExtendResult {
                score: 14,
                max_off: 10,
                ..Default::default()
            },
        ];
        let mut calls = 0;
        let (res, aw) = extend_with_retries(100, |w| {
            let r = outcomes[calls];
            calls += 1;
            assert_eq!(w, 100 << (calls - 1));
            r
        });
        assert_eq!(calls, 2); // retried because max_off 100 >= 75
        assert_eq!(res.score, 14);
        assert_eq!(aw, 200);

        let mut calls = 0;
        let (res, aw) = extend_with_retries(100, |_| {
            calls += 1;
            ExtendResult {
                score: 10,
                max_off: 2,
                ..Default::default()
            }
        });
        assert_eq!(calls, 1);
        assert_eq!(res.score, 10);
        assert_eq!(aw, 100);
        assert!(!needs_band_retry(&res, 100));
    }

    #[test]
    fn plan_clips_window_at_strand_boundary() {
        let reference: Vec<u8> = (0..100).map(|i| (i % 4) as u8).collect();
        let pac = PackedSeq::from_codes(&reference);
        let opts = MemOpts::default();
        // forward-strand seed near the boundary
        let seed = Seed {
            rbeg: 90,
            qbeg: 10,
            len: 9,
            score: 9,
        };
        let chain = mk_chain(seed);
        let plan = plan_chain(&opts, 100, 40, &chain, &one_contig(100), &pac);
        assert!(
            plan.rmax1 <= 100,
            "forward window must not cross into revcomp half"
        );
        // reverse-strand seed near the boundary
        let seed = Seed {
            rbeg: 101,
            qbeg: 10,
            len: 9,
            score: 9,
        };
        let chain = mk_chain(seed);
        let plan = plan_chain(&opts, 100, 40, &chain, &one_contig(100), &pac);
        assert!(
            plan.rmax0 >= 100,
            "reverse window must not cross into forward half"
        );
    }

    #[test]
    fn plan_clips_window_at_contig_boundary() {
        use mem2_seqio::refseq::ContigAnn;
        // two 50bp contigs concatenated; l_pac = 100
        let reference: Vec<u8> = (0..100).map(|i| (i % 4) as u8).collect();
        let pac = PackedSeq::from_codes(&reference);
        let contigs = ContigSet {
            contigs: vec![
                ContigAnn {
                    name: "a".into(),
                    offset: 0,
                    len: 50,
                },
                ContigAnn {
                    name: "b".into(),
                    offset: 50,
                    len: 50,
                },
            ],
            holes: vec![],
        };
        let opts = MemOpts::default();
        // forward seed at the end of contig a: the window must stop at 50
        let seed = Seed {
            rbeg: 40,
            qbeg: 10,
            len: 9,
            score: 9,
        };
        let mut chain = mk_chain(seed);
        chain.rid = 0;
        let plan = plan_chain(&opts, 100, 40, &chain, &contigs, &pac);
        assert!(
            plan.rmax1 <= 50,
            "forward window leaked into contig b: {}",
            plan.rmax1
        );
        // forward seed at the start of contig b: the window must start at 50
        let seed = Seed {
            rbeg: 52,
            qbeg: 10,
            len: 9,
            score: 9,
        };
        let mut chain = mk_chain(seed);
        chain.rid = 1;
        let plan = plan_chain(&opts, 100, 40, &chain, &contigs, &pac);
        assert!(
            plan.rmax0 >= 50,
            "forward window leaked into contig a: {}",
            plan.rmax0
        );
        // reverse-strand seed in contig b's image [100, 150): clip to it
        let seed = Seed {
            rbeg: 105,
            qbeg: 10,
            len: 9,
            score: 9,
        };
        let mut chain = mk_chain(seed);
        chain.rid = 1;
        let plan = plan_chain(&opts, 100, 40, &chain, &contigs, &pac);
        assert!(
            plan.rmax0 >= 100 && plan.rmax1 <= 150,
            "reverse window must stay inside contig b's image: [{}, {})",
            plan.rmax0,
            plan.rmax1
        );
    }
}
