//! SAM output formatting — bwa's `mem_reg2aln` + `mem_aln2sam`
//! (SAM-FORM stage). Soft clipping is used for all records (bwa's `-Y`
//! behaviour), and the XA list is not emitted; both choices are uniform
//! across workflows so identical-output comparisons hold.
//!
//! Positions are carried as `u64`/`i64` end to end (doubled-space math
//! in `i64`, SAM `pos`/`pnext` in `u64`), so records are identical
//! whichever suffix-array width (u32/u64) the index was built with —
//! only CIGAR op lengths use `u32`, bounded by the read length.

use mem2_bsw::global::{cigar_string, global_align, CigarOp};
use mem2_bsw::ScoreParams;
use mem2_seqio::{ContigSet, PackedSeq};

use crate::mapq::approx_mapq_se;
use crate::opts::MemOpts;
use crate::region::AlnReg;

/// One SAM alignment line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SamRecord {
    /// Read name.
    pub qname: String,
    /// SAM flags.
    pub flag: u16,
    /// Contig name or `*`.
    pub rname: String,
    /// 1-based leftmost position (0 when unmapped).
    pub pos: u64,
    /// Mapping quality.
    pub mapq: u8,
    /// CIGAR string or `*`.
    pub cigar: String,
    /// Mate reference name: `=`, a contig name, or `*` (single-end).
    pub rnext: String,
    /// 1-based mate position (0 when unset).
    pub pnext: u64,
    /// Observed template length (0 when unset; signs mirror within a pair).
    pub tlen: i64,
    /// Read bases as output (reverse-complemented when on the minus strand).
    pub seq: String,
    /// Base qualities as output.
    pub qual: String,
    /// Tab-separated optional tags.
    pub tags: String,
}

impl SamRecord {
    /// Render the record as one SAM line (without trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.qname,
            self.flag,
            self.rname,
            self.pos,
            self.mapq,
            self.cigar,
            self.rnext,
            self.pnext,
            self.tlen,
            self.seq,
            self.qual,
            self.tags
        )
    }

    /// Reference bases consumed by the CIGAR (M and D runs); 0 for `*`.
    /// Used for mate-position/TLEN bookkeeping in paired output.
    pub fn cigar_ref_len(&self) -> u64 {
        let mut total = 0u64;
        let mut run = 0u64;
        for b in self.cigar.bytes() {
            match b {
                b'0'..=b'9' => run = run * 10 + (b - b'0') as u64,
                b'M' | b'D' => {
                    total += run;
                    run = 0;
                }
                _ => run = 0,
            }
        }
        total
    }
}

/// The read-side inputs to SAM formatting.
pub struct ReadInfo<'a> {
    /// Read name.
    pub name: &'a str,
    /// Base codes (0..4).
    pub codes: &'a [u8],
    /// ASCII bases as read from FASTQ.
    pub seq: &'a [u8],
    /// ASCII qualities.
    pub qual: &'a [u8],
}

/// Generate the CIGAR of a region (bwa's `bwa_gen_cigar2`): fetch the
/// reference window, reverse both sequences on the minus strand (keeps
/// indels left-aligned in genome orientation), run banded global
/// alignment, and compute NM.
fn gen_cigar(
    score_params: &ScoreParams,
    l_pac: i64,
    pac: &PackedSeq,
    query_codes: &[u8],
    rb: i64,
    re: i64,
    w: i32,
) -> (i32, Vec<CigarOp>, i32) {
    let mut qseg = query_codes.to_vec();
    let mut rseg = pac.fetch2(rb as usize, re as usize);
    let is_rev = rb >= l_pac;
    if is_rev {
        qseg.reverse();
        rseg.reverse();
    }
    if qseg.len() == rseg.len() && w == 0 {
        // no-gap shortcut
        let score: i32 = qseg
            .iter()
            .zip(&rseg)
            .map(|(&q, &t)| score_params.score(t, q))
            .sum();
        let cigar = vec![CigarOp::Match(qseg.len() as u32)];
        let nm = count_nm(&cigar, &qseg, &rseg);
        return (score, cigar, nm);
    }
    let (score, cigar) = global_align(score_params, &qseg, &rseg, w);
    let nm = count_nm(&cigar, &qseg, &rseg);
    (score, cigar, nm)
}

/// Edit distance along a CIGAR: mismatches within M runs plus indel bases.
fn count_nm(cigar: &[CigarOp], q: &[u8], t: &[u8]) -> i32 {
    let (mut qi, mut ti, mut nm) = (0usize, 0usize, 0i32);
    for op in cigar {
        match *op {
            CigarOp::Match(n) => {
                for k in 0..n as usize {
                    if q[qi + k] != t[ti + k] || q[qi + k] > 3 {
                        nm += 1;
                    }
                }
                qi += n as usize;
                ti += n as usize;
            }
            CigarOp::Ins(n) => {
                qi += n as usize;
                nm += n as i32;
            }
            CigarOp::Del(n) => {
                ti += n as usize;
                nm += n as i32;
            }
            CigarOp::SoftClip(n) => qi += n as usize,
        }
    }
    nm
}

/// Convert one region to a SAM record (bwa's `mem_reg2aln` + `mem_aln2sam`).
/// `mapq_override` replaces the single-end MAPQ estimate — the paired-end
/// path passes the pair-aware quality computed in `mem_sam_pe` style.
#[allow(clippy::too_many_arguments)]
pub fn region_to_sam(
    opts: &MemOpts,
    l_pac: i64,
    pac: &PackedSeq,
    contigs: &ContigSet,
    read: &ReadInfo<'_>,
    reg: &AlnReg,
    supplementary: bool,
    mapq_cap: Option<u8>,
    mapq_override: Option<u8>,
) -> SamRecord {
    let l_query = read.codes.len() as i32;
    let (qb, qe) = (reg.qb, reg.qe);
    let (rb, re) = (reg.rb, reg.re);
    let mapq_raw = if reg.secondary < 0 {
        approx_mapq_se(opts, reg)
    } else {
        0
    };
    let mut mapq = match mapq_override {
        Some(q) if reg.secondary < 0 => q,
        _ => mapq_raw.clamp(0, 255) as u8,
    };
    if let Some(cap) = mapq_cap {
        mapq = mapq.min(cap);
    }

    // band for CIGAR generation
    let s = &opts.score;
    let tmp = MemOpts::infer_bw(qe - qb, (re - rb) as i32, reg.truesc, s.a, s.o_del, s.e_del);
    let mut w2 =
        MemOpts::infer_bw(qe - qb, (re - rb) as i32, reg.truesc, s.a, s.o_ins, s.e_ins).max(tmp);
    if w2 > opts.chain.w {
        w2 = w2.min(reg.w);
    }
    // regenerate with a wider band while global alignment underperforms
    let mut last_sc = i32::MIN;
    let mut i = 0;
    let (mut gscore, mut cigar, mut nm);
    loop {
        w2 = w2.min(opts.chain.w << 2);
        let out = gen_cigar(
            &opts.score,
            l_pac,
            pac,
            &read.codes[qb as usize..qe as usize],
            rb,
            re,
            w2,
        );
        gscore = out.0;
        cigar = out.1;
        nm = out.2;
        if gscore == last_sc || w2 == opts.chain.w << 2 {
            break;
        }
        last_sc = gscore;
        w2 <<= 1;
        i += 1;
        if !(i < 3 && gscore < reg.truesc - opts.score.a) {
            break;
        }
    }
    let _ = gscore;

    // position in forward coordinates
    let is_rev = rb >= l_pac;
    let mut pos_f = if is_rev { 2 * l_pac - re } else { rb } as u64;

    // squeeze out a leading or trailing deletion
    if let Some(&CigarOp::Del(n)) = cigar.first() {
        pos_f += n as u64;
        cigar.remove(0);
    } else if let Some(&CigarOp::Del(_)) = cigar.last() {
        cigar.pop();
    }

    // soft clips in output orientation
    let clip5 = if is_rev { l_query - qe } else { qb };
    let clip3 = if is_rev { qb } else { l_query - qe };
    if clip5 > 0 {
        cigar.insert(0, CigarOp::SoftClip(clip5 as u32));
    }
    if clip3 > 0 {
        cigar.push(CigarOp::SoftClip(clip3 as u32));
    }

    let (rid, off) = contigs
        .locate(pos_f as usize)
        .expect("region position must fall inside a contig");
    let mut flag = 0u16;
    if is_rev {
        flag |= 0x10;
    }
    if reg.secondary >= 0 {
        flag |= 0x100;
    }
    if supplementary {
        flag |= 0x800;
    }
    let (seq, qual) = orient_read(read, is_rev);
    let xs = reg.sub.max(reg.csub);
    SamRecord {
        qname: read.name.to_string(),
        flag,
        rname: contigs.contigs[rid].name.clone(),
        pos: off as u64 + 1,
        mapq,
        cigar: cigar_string(&cigar),
        rnext: "*".to_string(),
        pnext: 0,
        tlen: 0,
        seq,
        qual,
        tags: format!("NM:i:{nm}\tAS:i:{}\tXS:i:{xs}", reg.score),
    }
}

/// The unmapped record for a read with no acceptable region.
pub fn unmapped_record(read: &ReadInfo<'_>) -> SamRecord {
    SamRecord {
        qname: read.name.to_string(),
        flag: 0x4,
        rname: "*".to_string(),
        pos: 0,
        mapq: 0,
        cigar: "*".to_string(),
        rnext: "*".to_string(),
        pnext: 0,
        tlen: 0,
        seq: String::from_utf8_lossy(read.seq).into_owned(),
        qual: String::from_utf8_lossy(read.qual).into_owned(),
        tags: "AS:i:0".to_string(),
    }
}

fn orient_read(read: &ReadInfo<'_>, is_rev: bool) -> (String, String) {
    if !is_rev {
        (
            String::from_utf8_lossy(read.seq).into_owned(),
            String::from_utf8_lossy(read.qual).into_owned(),
        )
    } else {
        let seq: String = read
            .seq
            .iter()
            .rev()
            .map(|&b| match b {
                b'A' | b'a' => 'T',
                b'C' | b'c' => 'G',
                b'G' | b'g' => 'C',
                b'T' | b't' => 'A',
                _ => 'N',
            })
            .collect();
        let qual: String = read.qual.iter().rev().map(|&b| b as char).collect();
        (seq, qual)
    }
}

/// Format all surviving regions of one read: the best region is primary,
/// further non-secondary regions become supplementary lines with MAPQ
/// capped by the primary's (bwa's behaviour); reads with nothing above
/// the score threshold produce one unmapped record.
pub fn regions_to_sam(
    opts: &MemOpts,
    l_pac: i64,
    pac: &PackedSeq,
    contigs: &ContigSet,
    read: &ReadInfo<'_>,
    regs: &[AlnReg],
) -> Vec<SamRecord> {
    let mut out: Vec<SamRecord> = Vec::new();
    let mut n_primary = 0usize;
    for reg in regs {
        if reg.score < opts.t_min_score {
            continue;
        }
        if reg.secondary >= 0 && !opts.output_all {
            continue; // secondaries suppressed unless `-a`
        }
        let is_secondary = reg.secondary >= 0;
        let supplementary = !is_secondary && n_primary > 0;
        let cap = out.first().map(|r| r.mapq);
        out.push(region_to_sam(
            opts,
            l_pac,
            pac,
            contigs,
            read,
            reg,
            supplementary,
            cap,
            None,
        ));
        if !is_secondary {
            n_primary += 1;
        }
    }
    if out.iter().all(|r| r.flag & 0x100 != 0) {
        // no primary line survived (all secondary or nothing at all):
        // emit the unmapped record bwa would print
        if out.is_empty() {
            out.push(unmapped_record(read));
        }
    }
    if out.is_empty() {
        out.push(unmapped_record(read));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem2_seqio::Reference;

    fn setup() -> (MemOpts, Reference) {
        let codes: Vec<u8> = (0..240).map(|i| ((i * 5 + 1) % 4) as u8).collect();
        (MemOpts::default(), Reference::from_codes("chr_t", &codes))
    }

    fn read_info<'a>(codes: &'a [u8], seq: &'a [u8], qual: &'a [u8]) -> ReadInfo<'a> {
        ReadInfo {
            name: "r1",
            codes,
            seq,
            qual,
        }
    }

    fn decode(codes: &[u8]) -> Vec<u8> {
        codes.iter().map(|&c| b"ACGTN"[c.min(4) as usize]).collect()
    }

    #[test]
    fn forward_perfect_region_formats_cleanly() {
        let (opts, reference) = setup();
        let codes = reference.pac.fetch(40, 140);
        let seq = decode(&codes);
        let qual = vec![b'I'; 100];
        let read = read_info(&codes, &seq, &qual);
        let reg = AlnReg {
            rb: 40,
            re: 140,
            qb: 0,
            qe: 100,
            rid: 0,
            score: 100,
            truesc: 100,
            w: 100,
            seedcov: 100,
            secondary: -1,
            ..Default::default()
        };
        let recs = regions_to_sam(
            &opts,
            reference.len() as i64,
            &reference.pac,
            &reference.contigs,
            &read,
            &[reg],
        );
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.flag, 0);
        assert_eq!(r.rname, "chr_t");
        assert_eq!(r.pos, 41);
        assert_eq!(r.cigar, "100M");
        assert!(r.tags.contains("NM:i:0"));
        assert!(r.tags.contains("AS:i:100"));
        assert_eq!(r.mapq, 60);
        let line = r.to_line();
        assert_eq!(line.split('\t').count(), 14);
    }

    #[test]
    fn reverse_region_revcomps_seq_and_flags() {
        let (opts, reference) = setup();
        let l = reference.len() as i64;
        // a read equal to revcomp(ref[40..140)): region in doubled space
        let fw = reference.pac.fetch(40, 140);
        let codes: Vec<u8> = fw.iter().rev().map(|&c| 3 - c).collect();
        let seq = decode(&codes);
        let qual: Vec<u8> = (0..100u8).map(|i| b'#' + (i % 40)).collect();
        let read = read_info(&codes, &seq, &qual);
        let reg = AlnReg {
            rb: 2 * l - 140,
            re: 2 * l - 40,
            qb: 0,
            qe: 100,
            rid: 0,
            score: 100,
            truesc: 100,
            w: 100,
            secondary: -1,
            ..Default::default()
        };
        let recs = regions_to_sam(&opts, l, &reference.pac, &reference.contigs, &read, &[reg]);
        let r = &recs[0];
        assert_eq!(r.flag, 0x10);
        assert_eq!(r.pos, 41);
        assert_eq!(r.cigar, "100M");
        // output sequence must be the forward reference text
        assert_eq!(r.seq.as_bytes(), decode(&fw).as_slice());
        // qualities reversed
        assert_eq!(r.qual.as_bytes()[0], qual[99]);
        assert!(r.tags.contains("NM:i:0"));
    }

    #[test]
    fn soft_clips_appear_for_partial_alignment() {
        let (opts, reference) = setup();
        // read: 10 junk bases + 90 reference bases
        let mut codes = vec![0u8; 10];
        codes.extend(reference.pac.fetch(100, 190));
        let seq = decode(&codes);
        let qual = vec![b'I'; 100];
        let read = read_info(&codes, &seq, &qual);
        let reg = AlnReg {
            rb: 100,
            re: 190,
            qb: 10,
            qe: 100,
            rid: 0,
            score: 90,
            truesc: 90,
            w: 100,
            secondary: -1,
            ..Default::default()
        };
        let recs = regions_to_sam(
            &opts,
            reference.len() as i64,
            &reference.pac,
            &reference.contigs,
            &read,
            &[reg],
        );
        assert_eq!(recs[0].cigar, "10S90M");
        assert_eq!(recs[0].pos, 101);
    }

    #[test]
    fn low_scoring_and_secondary_regions_are_suppressed() {
        let (opts, reference) = setup();
        let codes = reference.pac.fetch(0, 100);
        let seq = decode(&codes);
        let qual = vec![b'I'; 100];
        let read = read_info(&codes, &seq, &qual);
        let low = AlnReg {
            rb: 0,
            re: 20,
            qb: 0,
            qe: 20,
            score: 20,
            truesc: 20,
            w: 100,
            secondary: -1,
            ..Default::default()
        };
        let sec = AlnReg {
            rb: 0,
            re: 100,
            qb: 0,
            qe: 100,
            score: 90,
            truesc: 90,
            w: 100,
            secondary: 0,
            ..Default::default()
        };
        let recs = regions_to_sam(
            &opts,
            reference.len() as i64,
            &reference.pac,
            &reference.contigs,
            &read,
            &[low, sec],
        );
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].flag, 0x4);
        assert_eq!(recs[0].cigar, "*");
    }

    #[test]
    fn supplementary_lines_get_flag_and_mapq_cap() {
        let (opts, reference) = setup();
        let codes = reference.pac.fetch(0, 120);
        let seq = decode(&codes);
        let qual = vec![b'I'; 120];
        let read = read_info(&codes, &seq, &qual);
        let a = AlnReg {
            rb: 0,
            re: 60,
            qb: 0,
            qe: 60,
            score: 60,
            truesc: 60,
            w: 100,
            sub: 55,
            secondary: -1,
            ..Default::default()
        };
        let b = AlnReg {
            rb: 160,
            re: 220,
            qb: 60,
            qe: 120,
            score: 58,
            truesc: 58,
            w: 100,
            secondary: -1,
            ..Default::default()
        };
        let recs = regions_to_sam(
            &opts,
            reference.len() as i64,
            &reference.pac,
            &reference.contigs,
            &read,
            &[a, b],
        );
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].flag & 0x800, 0);
        assert_eq!(recs[1].flag & 0x800, 0x800);
        assert!(recs[1].mapq <= recs[0].mapq);
    }

    #[test]
    fn cigar_ref_len_counts_m_and_d() {
        let mut r = unmapped_record(&read_info(&[], b"", b""));
        r.cigar = "5S90M2I3D6M".to_string();
        assert_eq!(r.cigar_ref_len(), 99); // 90M + 3D + 6M
        r.cigar = "*".to_string();
        assert_eq!(r.cigar_ref_len(), 0);
    }

    #[test]
    fn nm_counts_mismatches_and_indels() {
        let cigar = vec![CigarOp::Match(4), CigarOp::Ins(2), CigarOp::Match(2)];
        let q = [0u8, 1, 2, 3, 0, 0, 1, 1];
        let t = [0u8, 1, 2, 0, 1, 1]; // one mismatch at M position 3
        assert_eq!(count_nm(&cigar, &q, &t), 3); // 1 mismatch + 2 ins
    }
}
