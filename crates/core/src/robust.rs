//! Hardened output-path plumbing for long batch runs.
//!
//! [`RobustWriter`] wraps the SAM sink and counts bytes actually handed
//! to the OS, so after a flush+fsync the count is a *durable* output
//! offset — the coordinate the checkpoint journal records and the
//! `--resume` path truncates back to. The classification helpers
//! ([`is_broken_pipe`], [`is_no_space`]) let the CLI turn the two
//! overwhelmingly common output failures — a reader that went away
//! (`mem2 mem | head`) and a full disk — into clean diagnostics instead
//! of panics.

use std::io::{self, Write};

/// A byte-counting pass-through writer. `written()` is the number of
/// bytes accepted by the inner writer; combined with an fsync it is the
/// durable length of the output file.
pub struct RobustWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> RobustWriter<W> {
    /// Wrap `inner`, starting the byte count at `base` (the checkpointed
    /// durable offset on resume, 0 on a fresh run).
    pub fn with_base(inner: W, base: u64) -> Self {
        RobustWriter {
            inner,
            written: base,
        }
    }

    /// Wrap `inner` with a zero base.
    pub fn new(inner: W) -> Self {
        Self::with_base(inner, 0)
    }

    /// Total bytes accepted by the inner writer (including the resume
    /// base).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Access the wrapped writer (e.g. to `sync_data` a `File`).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for RobustWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The reader side of a pipe went away (`EPIPE`): `mem2 mem | head`.
/// Not a failure of the run — the convention is to exit 0 quietly.
pub fn is_broken_pipe(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::BrokenPipe
}

/// The filesystem is out of space (`ENOSPC`) or the process hit its file
/// size limit (`EFBIG`). The run cannot continue, but everything up to
/// the last checkpoint is durable and resumable.
pub fn is_no_space(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::StorageFull | io::ErrorKind::QuotaExceeded | io::ErrorKind::FileTooLarge
    ) || matches!(
        e.raw_os_error(),
        Some(28) /* ENOSPC */ | Some(122) /* EDQUOT */
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_bytes_through_partial_writes() {
        struct Dribble(Vec<u8>);
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = RobustWriter::with_base(Dribble(Vec::new()), 100);
        w.write_all(b"hello world").unwrap();
        assert_eq!(w.written(), 111);
        assert_eq!(&w.get_ref().0, b"hello world");
    }

    #[test]
    fn classifies_errno() {
        assert!(is_broken_pipe(&io::Error::from(io::ErrorKind::BrokenPipe)));
        assert!(!is_broken_pipe(&io::Error::from(io::ErrorKind::Other)));
        assert!(is_no_space(&io::Error::from_raw_os_error(28)));
        assert!(is_no_space(&io::Error::from(io::ErrorKind::StorageFull)));
        assert!(!is_no_space(&io::Error::from(io::ErrorKind::BrokenPipe)));
    }
}
