//! Backend byte-identity property suite: random job batches through the
//! scalar kernel, the portable lane emulation (every width), and every
//! `core::arch` backend compiled into this binary must produce identical
//! [`ExtendResult`]s — including batches engineered to straddle the
//! 8-bit overflow boundary, where jobs split between the simd8 and
//! simd16 kernels.

use proptest::prelude::*;

use mem2_bsw::simd16::extend_chunk_i16_v;
use mem2_bsw::simd8::{extend_chunk_u8_v, MAX_SCORE_8};
use mem2_bsw::{
    extend_scalar, BswEngine, ExtendJob, ExtendResult, JobRef, NoPhase, ScoreParams, SimdChoice,
};
use mem2_simd::{Backend, SimdI16, SimdU8};

/// Jobs whose `h0 + qlen·match` lands on both sides of [`MAX_SCORE_8`],
/// so every batch exercises the 8-bit group, the 16-bit group, and the
/// boundary between them.
fn arb_boundary_job() -> impl Strategy<Value = ExtendJob> {
    (
        prop::collection::vec(0u8..5, 1..80),
        prop::collection::vec(0u8..5, 1..100),
        // default match score is 1: h0 + qlen spans ~[120, 340] around 249
        120i32..260,
        1i32..60,
    )
        .prop_map(|(q, t, h0, w)| ExtendJob::new(q, t, h0, w))
}

/// Every backend compiled into this binary (the portable emulation is
/// always first).
fn compiled_backends() -> Vec<Backend> {
    let mut backends = vec![Backend::Portable];
    #[cfg(target_arch = "x86_64")]
    backends.push(Backend::Sse2);
    #[cfg(all(target_arch = "x86_64", target_feature = "sse4.1"))]
    backends.push(Backend::Sse41);
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
    backends.push(Backend::Avx2);
    #[cfg(target_arch = "aarch64")]
    backends.push(Backend::Neon);
    backends
}

fn run_u8_chunks<V: SimdU8>(params: &ScoreParams, refs: &[JobRef<'_>]) -> Vec<ExtendResult> {
    let mut out = vec![ExtendResult::default(); refs.len()];
    for (chunk, o) in refs.chunks(V::LANES).zip(out.chunks_mut(V::LANES)) {
        extend_chunk_u8_v::<V, _>(params, chunk, o, &mut NoPhase);
    }
    out
}

fn run_i16_chunks<V: SimdI16>(params: &ScoreParams, refs: &[JobRef<'_>]) -> Vec<ExtendResult> {
    let mut out = vec![ExtendResult::default(); refs.len()];
    for (chunk, o) in refs.chunks(V::LANES).zip(out.chunks_mut(V::LANES)) {
        extend_chunk_i16_v::<V, _>(params, chunk, o, &mut NoPhase);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine level: every compiled backend and every `--simd` choice
    /// reproduces the scalar kernel bit for bit on batches straddling
    /// the 8-bit → 16-bit precision boundary.
    #[test]
    fn engines_on_all_backends_match_scalar(
        jobs in prop::collection::vec(arb_boundary_job(), 1..60),
        sort in any::<bool>(),
    ) {
        let params = ScoreParams::default();
        let scalar: Vec<_> = jobs.iter().map(|j| extend_scalar(&params, j)).collect();
        for backend in compiled_backends() {
            let mut engine = BswEngine::with_backend(params, backend);
            engine.sort_by_length = sort;
            prop_assert_eq!(
                engine.extend_all(&jobs),
                scalar.clone(),
                "backend {:?} sort {}",
                backend,
                sort
            );
        }
        for choice in [SimdChoice::Auto, SimdChoice::Scalar, SimdChoice::Portable, SimdChoice::Native] {
            let engine = BswEngine::for_choice(params, choice);
            prop_assert_eq!(engine.extend_all(&jobs), scalar.clone(), "choice {}", choice);
        }
    }

    /// Kernel level, 8-bit: each compiled native chunk kernel vs the
    /// portable one on 8-bit-safe jobs.
    #[test]
    fn simd8_chunks_native_vs_portable(
        jobs in prop::collection::vec(arb_boundary_job(), 1..50),
    ) {
        let params = ScoreParams::default();
        // keep only jobs the 8-bit kernel accepts
        let safe: Vec<ExtendJob> = jobs
            .into_iter()
            .filter(|j| j.h0 + j.query.len() as i32 * params.max_score() <= MAX_SCORE_8)
            .collect();
        let refs: Vec<JobRef<'_>> = safe.iter().map(JobRef::from).collect();
        let want = run_u8_chunks::<mem2_simd::VecU8<16>>(&params, &refs);
        #[cfg(target_arch = "x86_64")]
        prop_assert_eq!(
            run_u8_chunks::<mem2_simd::x86::U8x16Sse2>(&params, &refs), want.clone(), "sse2");
        #[cfg(all(target_arch = "x86_64", target_feature = "sse4.1"))]
        prop_assert_eq!(
            run_u8_chunks::<mem2_simd::x86::U8x16Sse41>(&params, &refs), want.clone(), "sse4.1");
        #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
        prop_assert_eq!(
            run_u8_chunks::<mem2_simd::x86::U8x32Avx>(&params, &refs),
            run_u8_chunks::<mem2_simd::VecU8<32>>(&params, &refs),
            "avx2"
        );
        #[cfg(target_arch = "aarch64")]
        prop_assert_eq!(
            run_u8_chunks::<mem2_simd::neon::U8x16Neon>(&params, &refs), want.clone(), "neon");
        let _ = want;
    }

    /// Kernel level, 16-bit: each compiled native chunk kernel vs the
    /// portable one (any job is 16-bit-safe at these sizes).
    #[test]
    fn simd16_chunks_native_vs_portable(
        jobs in prop::collection::vec(arb_boundary_job(), 1..50),
    ) {
        let params = ScoreParams::default();
        let refs: Vec<JobRef<'_>> = jobs.iter().map(JobRef::from).collect();
        let want = run_i16_chunks::<mem2_simd::VecI16<8>>(&params, &refs);
        #[cfg(target_arch = "x86_64")]
        prop_assert_eq!(
            run_i16_chunks::<mem2_simd::x86::I16x8Sse2>(&params, &refs), want.clone(), "sse2");
        #[cfg(all(target_arch = "x86_64", target_feature = "sse4.1"))]
        prop_assert_eq!(
            run_i16_chunks::<mem2_simd::x86::I16x8Sse41>(&params, &refs), want.clone(), "sse4.1");
        #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
        prop_assert_eq!(
            run_i16_chunks::<mem2_simd::x86::I16x16Avx>(&params, &refs),
            run_i16_chunks::<mem2_simd::VecI16<16>>(&params, &refs),
            "avx2"
        );
        #[cfg(target_arch = "aarch64")]
        prop_assert_eq!(
            run_i16_chunks::<mem2_simd::neon::I16x8Neon>(&params, &refs), want.clone(), "neon");
        let _ = want;
    }

    /// The no-clone band-doubling descriptor is equivalent to cloning
    /// the job and editing its band.
    #[test]
    fn jobref_band_override_equals_cloned_job(
        jobs in prop::collection::vec(arb_boundary_job(), 1..30),
        factor in 2i32..4,
    ) {
        let params = ScoreParams::default();
        let engine = BswEngine::optimized(params);
        let cloned: Vec<ExtendJob> = jobs
            .iter()
            .map(|j| {
                let mut c = j.clone();
                c.w *= factor;
                c
            })
            .collect();
        let want = engine.extend_all(&cloned);
        let refs: Vec<JobRef<'_>> =
            jobs.iter().map(|j| JobRef::with_band(j, j.w * factor)).collect();
        let mut got = vec![ExtendResult::default(); refs.len()];
        engine.extend_jobs(&refs, &mut got, &mut NoPhase);
        prop_assert_eq!(got, want);
    }
}
