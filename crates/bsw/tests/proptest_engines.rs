//! Property tests: every SIMD engine configuration is bit-identical to
//! the scalar `ksw_extend2` port on arbitrary jobs, and the global
//! aligner's CIGARs are always structurally valid.

use proptest::prelude::*;

use mem2_bsw::{
    extend_scalar, global_align, BswEngine, CigarOp, EngineKind, ExtendJob, ScoreParams,
};

fn arb_job() -> impl Strategy<Value = ExtendJob> {
    (
        prop::collection::vec(0u8..5, 1..120),
        prop::collection::vec(0u8..5, 1..140),
        1i32..200,
        1i32..80,
    )
        .prop_map(|(q, t, h0, w)| ExtendJob::new(q, t, h0, w))
}

fn arb_params() -> impl Strategy<Value = ScoreParams> {
    (
        1i32..3,
        2i32..6,
        4i32..8,
        1i32..3,
        4i32..8,
        1i32..3,
        20i32..120,
        0i32..10,
    )
        .prop_map(|(a, b, od, ed, oi, ei, z, eb)| ScoreParams::new(a, b, od, ed, oi, ei, z, eb))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simd_engines_match_scalar(
        jobs in prop::collection::vec(arb_job(), 1..80),
        params in arb_params(),
        width in prop::sample::select(vec![16usize, 32, 64]),
        sort in any::<bool>(),
    ) {
        let scalar: Vec<_> = jobs.iter().map(|j| extend_scalar(&params, j)).collect();
        let engine = BswEngine {
            params,
            kind: EngineKind::Vector { width },
            backend: mem2_simd::Backend::Portable,
            sort_by_length: sort,
            force_16bit: false,
        };
        prop_assert_eq!(engine.extend_all(&jobs), scalar);
    }

    #[test]
    fn forced_16bit_matches_scalar(
        jobs in prop::collection::vec(arb_job(), 1..40),
    ) {
        let params = ScoreParams::default();
        let scalar: Vec<_> = jobs.iter().map(|j| extend_scalar(&params, j)).collect();
        let engine = BswEngine {
            params,
            kind: EngineKind::Vector { width: 64 },
            backend: mem2_simd::Backend::Portable,
            sort_by_length: true,
            force_16bit: true,
        };
        prop_assert_eq!(engine.extend_all(&jobs), scalar);
    }

    #[test]
    fn extension_invariants_hold(job in arb_job()) {
        let params = ScoreParams::default();
        let r = extend_scalar(&params, &job);
        // score can never drop below the seed score
        prop_assert!(r.score >= job.h0);
        // consumed lengths stay within bounds
        prop_assert!(r.qle >= 0 && r.qle <= job.query.len() as i32);
        prop_assert!(r.tle >= 0 && r.tle <= job.target.len() as i32);
        prop_assert!(r.gtle >= 0 && r.gtle <= job.target.len() as i32);
        // gscore == -1 means the query end was never reached
        prop_assert!(r.gscore >= -1);
        prop_assert!(r.max_off >= 0);
    }

    #[test]
    fn global_cigar_consumes_exact_lengths(
        q in prop::collection::vec(0u8..5, 0..80),
        t in prop::collection::vec(0u8..5, 0..80),
        w in 1i32..40,
    ) {
        let params = ScoreParams::default();
        let (_, cigar) = global_align(&params, &q, &t, w);
        let mut ql = 0usize;
        let mut tl = 0usize;
        for op in &cigar {
            match *op {
                CigarOp::Match(n) => { ql += n as usize; tl += n as usize; }
                CigarOp::Ins(n) => ql += n as usize,
                CigarOp::Del(n) => tl += n as usize,
                CigarOp::SoftClip(n) => ql += n as usize,
            }
            prop_assert!(!op.is_empty(), "zero-length op");
        }
        prop_assert_eq!(ql, q.len());
        prop_assert_eq!(tl, t.len());
        // ops are run-length encoded: no two adjacent ops of the same kind
        for pair in cigar.windows(2) {
            prop_assert!(pair[0].ch() != pair[1].ch(), "unmerged ops: {:?}", cigar);
        }
    }

    #[test]
    fn global_score_is_symmetric_under_sequence_swap(
        q in prop::collection::vec(0u8..4, 1..40),
        t in prop::collection::vec(0u8..4, 1..40),
    ) {
        // with symmetric gap penalties, swapping sequences flips I<->D
        // but preserves the score
        let params = ScoreParams::default();
        let (s1, _) = global_align(&params, &q, &t, 100);
        let (s2, _) = global_align(&params, &t, &q, 100);
        prop_assert_eq!(s1, s2);
    }
}
