//! AoS → SoA conversion (paper §5.3.3): bases of the `lanes` sequence
//! pairs are interleaved so that column `j` of all lanes is one
//! contiguous vector load instead of a gather.

use crate::types::JobRef;

/// Padding base written beyond each lane's own sequence; 4 (= N) can never
/// satisfy the match compare and is masked out anyway.
pub const PAD_BASE: u8 = 4;

/// Pack the queries of ≤ `lanes` jobs column-major: `out[j*lanes + lane]`.
/// Returns the maximum query length.
pub fn pack_queries(jobs: &[JobRef<'_>], lanes: usize, out: &mut Vec<u8>) -> usize {
    pack(jobs, out, lanes, |job| job.query)
}

/// Pack the targets of ≤ `lanes` jobs column-major.
pub fn pack_targets(jobs: &[JobRef<'_>], lanes: usize, out: &mut Vec<u8>) -> usize {
    pack(jobs, out, lanes, |job| job.target)
}

fn pack<'a>(
    jobs: &[JobRef<'a>],
    out: &mut Vec<u8>,
    w: usize,
    get: impl Fn(&JobRef<'a>) -> &'a [u8],
) -> usize {
    assert!(jobs.len() <= w);
    let maxlen = jobs.iter().map(|j| get(j).len()).max().unwrap_or(0);
    out.clear();
    // one extra padding column: the kernels issue a (masked-out) column
    // load at j == maxlen for the eh[end] book-keeping write
    out.resize((maxlen + 1) * w, PAD_BASE);
    for (lane, job) in jobs.iter().enumerate() {
        for (j, &b) in get(job).iter().enumerate() {
            out[j * w + lane] = b;
        }
    }
    maxlen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ExtendJob;

    #[test]
    fn packs_column_major_with_padding() {
        let jobs = [
            ExtendJob::new(vec![0, 1, 2], vec![3], 1, 1),
            ExtendJob::new(vec![3], vec![2, 2], 1, 1),
        ];
        let refs: Vec<JobRef<'_>> = jobs.iter().map(JobRef::from).collect();
        let mut buf = Vec::new();
        let maxq = pack_queries(&refs, 4, &mut buf);
        assert_eq!(maxq, 3);
        assert_eq!(buf.len(), 16); // 3 columns + 1 padding column
                                   // column 0: lane0=0, lane1=3, rest pad
        assert_eq!(&buf[0..4], &[0, 3, PAD_BASE, PAD_BASE]);
        // column 1: lane0=1, lane1 pad
        assert_eq!(&buf[4..8], &[1, PAD_BASE, PAD_BASE, PAD_BASE]);
        assert_eq!(&buf[8..12], &[2, PAD_BASE, PAD_BASE, PAD_BASE]);
        let maxt = pack_targets(&refs, 4, &mut buf);
        assert_eq!(maxt, 2);
        assert_eq!(&buf[0..4], &[3, 2, PAD_BASE, PAD_BASE]);
    }

    #[test]
    fn empty_jobs_pack_to_padding_only() {
        let mut buf = vec![9; 8];
        assert_eq!(pack_queries(&[], 4, &mut buf), 0);
        assert_eq!(buf, vec![PAD_BASE; 4]);
    }
}
