//! Inter-task vectorized BSW at 16-bit precision.
//!
//! Structure mirrors [`crate::simd8`] (see the detailed comments there);
//! the differences are the element type and that the arithmetic is plain
//! signed i16 — an exact transcription of the scalar recurrence, since no
//! clamping tricks are needed: `h0 + qlen·match` is capped at
//! [`MAX_SCORE_16`] by the engine, far below `i16::MAX`. Like the 8-bit
//! kernel it is generic over the lane trait ([`SimdI16`]) and so runs on
//! the portable emulation or any compiled `core::arch` backend; the SoA
//! base columns stay one byte per base and are widened on load
//! (`pmovzxbw`-style `load_from_u8`).

use mem2_simd::{SimdI16, VecI16, MAX_LANES};

use crate::engine::{Phase, PhaseSink};
use crate::simd8::clamp_band;
use crate::soa::{pack_queries, pack_targets};
use crate::types::{ExtendResult, JobRef, ScoreParams};

/// Largest `h0 + qlen·match` the 16-bit engine accepts.
pub const MAX_SCORE_16: i32 = 30_000;

/// Portable-backend entry at const width `W` (8 = SSE-like,
/// 16 = AVX2-like, 32 = AVX-512-like).
pub fn extend_chunk_i16<const W: usize, PH: PhaseSink>(
    params: &ScoreParams,
    jobs: &[JobRef<'_>],
    out: &mut [ExtendResult],
    ph: &mut PH,
) {
    extend_chunk_i16_v::<VecI16<W>, PH>(params, jobs, out, ph)
}

/// Extend ≤ `V::LANES` jobs simultaneously at 16-bit precision. Caller
/// guarantees per job: `qlen ≥ 1`, `tlen ≥ 1`, `h0 ≥ 1`, and
/// `h0 + qlen·match ≤ MAX_SCORE_16`.
pub fn extend_chunk_i16_v<V: SimdI16, PH: PhaseSink>(
    params: &ScoreParams,
    jobs: &[JobRef<'_>],
    out: &mut [ExtendResult],
    ph: &mut PH,
) {
    let lanes = V::LANES;
    let n = jobs.len();
    assert!(n <= lanes && n == out.len() && lanes <= MAX_LANES);

    ph.begin(Phase::Preproc);
    let mut q_soa = Vec::new();
    let mut t_soa = Vec::new();
    let qmax = pack_queries(jobs, lanes, &mut q_soa);
    let tmax = pack_targets(jobs, lanes, &mut t_soa);

    let mut qlen = [0i32; MAX_LANES];
    let mut tlen = [0i32; MAX_LANES];
    let mut h0 = [0i32; MAX_LANES];
    let mut w_lane = [0i32; MAX_LANES];
    let mut beg = [0i32; MAX_LANES];
    let mut end = [0i32; MAX_LANES];
    let mut max = [0i32; MAX_LANES];
    let mut max_i = [-1i32; MAX_LANES];
    let mut max_j = [-1i32; MAX_LANES];
    let mut max_ie = [-1i32; MAX_LANES];
    let mut gscore = [-1i32; MAX_LANES];
    let mut max_off = [0i32; MAX_LANES];
    let mut dead = [true; MAX_LANES];
    for (lane, job) in jobs.iter().enumerate() {
        let ql = job.query.len();
        debug_assert!(ql >= 1 && !job.target.is_empty());
        debug_assert!(job.h0 >= 1 && job.h0 + ql as i32 * params.max_score() <= MAX_SCORE_16);
        qlen[lane] = ql as i32;
        tlen[lane] = job.target.len() as i32;
        h0[lane] = job.h0;
        w_lane[lane] = clamp_band(params, ql, job.w);
        beg[lane] = 0;
        end[lane] = ql as i32;
        max[lane] = job.h0;
        dead[lane] = false;
    }

    // DP rows, strided by lane (see simd8)
    let mut h_buf = vec![0i16; (qmax + 2) * lanes];
    let mut e_buf = vec![0i16; (qmax + 2) * lanes];
    let oe_ins = params.o_ins + params.e_ins;
    let oe_del = params.o_del + params.e_del;
    for lane in 0..n {
        h_buf[lane] = h0[lane] as i16;
        h_buf[lanes + lane] = if h0[lane] > oe_ins {
            (h0[lane] - oe_ins) as i16
        } else {
            0
        };
        let mut j = 2;
        while j <= qlen[lane] as usize && h_buf[(j - 1) * lanes + lane] as i32 > params.e_ins {
            h_buf[j * lanes + lane] = h_buf[(j - 1) * lanes + lane] - params.e_ins as i16;
            j += 1;
        }
    }
    ph.end(Phase::Preproc);

    let splat_match = V::splat(params.a as i16);
    let splat_mism = V::splat(-(params.b as i16));
    let splat_nscore = V::splat(-1);
    let splat_three = V::splat(3);
    let splat_edel = V::splat(params.e_del as i16);
    let splat_eins = V::splat(params.e_ins as i16);
    let splat_oedel = V::splat(oe_del as i16);
    let splat_oeins = V::splat(oe_ins as i16);
    let ones = V::splat(-1);
    let zero = V::zero();

    for i in 0..tmax as i32 {
        ph.begin(Phase::BandAdjustI);
        let mut active = [false; MAX_LANES];
        let mut any_active = false;
        let mut h1_init = [0i16; MAX_LANES];
        let mut union_beg = i32::MAX;
        let mut union_end = 0i32;
        for lane in 0..n {
            if dead[lane] || i >= tlen[lane] {
                continue;
            }
            active[lane] = true;
            any_active = true;
            if beg[lane] < i - w_lane[lane] {
                beg[lane] = i - w_lane[lane];
            }
            if end[lane] > i + w_lane[lane] + 1 {
                end[lane] = i + w_lane[lane] + 1;
            }
            if end[lane] > qlen[lane] {
                end[lane] = qlen[lane];
            }
            h1_init[lane] = if beg[lane] == 0 {
                (h0[lane] - (params.o_del + params.e_del * (i + 1))).max(0) as i16
            } else {
                0
            };
            if beg[lane] <= end[lane] {
                union_beg = union_beg.min(beg[lane]);
                union_end = union_end.max(end[lane]);
            }
        }
        ph.end(Phase::BandAdjustI);
        if !any_active {
            break;
        }

        ph.begin(Phase::Cells);
        let mut act_a = [0i16; MAX_LANES];
        let mut beg_a = [i16::MAX; MAX_LANES];
        let mut end_a = [i16::MAX - 1; MAX_LANES];
        for lane in 0..n {
            if active[lane] && beg[lane] <= end[lane] {
                act_a[lane] = -1;
                beg_a[lane] = beg[lane] as i16;
                end_a[lane] = end[lane] as i16;
            }
        }
        let act_v = V::load(&act_a[..lanes]);
        let beg_v = V::load(&beg_a[..lanes]);
        let end_v = V::load(&end_a[..lanes]);
        let mut h1_v = V::load(&h1_init[..lanes]);
        let mut f_v = zero;
        let mut rowmax_v = zero;
        let mut mj_v = zero;
        let t_v = V::load_from_u8(&t_soa[(i as usize) * lanes..]);
        let t_ambig = t_v.cmpgt(splat_three);

        let n_live = active[..n].iter().filter(|&&a| a).count() as u64;
        ph.on_row(
            n_live,
            n_live * (union_end - union_beg.min(union_end)).max(0) as u64,
        );
        for j in union_beg.max(0)..=union_end {
            let col = (j as usize) * lanes;
            let j_v = V::splat(j as i16);
            let in_cell = j_v.cmpge(beg_v).and(end_v.cmpgt(j_v)).and(act_v);
            let at_end = j_v.cmpeq(end_v).and(act_v);
            let touched = in_cell.or(at_end);
            if touched.all_zero() {
                continue;
            }
            let ph_v = V::load(&h_buf[col..]);
            let pe_v = V::load(&e_buf[col..]);
            h1_v.blend(ph_v, touched).store(&mut h_buf[col..]);

            let q_v = V::load_from_u8(&q_soa[col..]);
            let ambig = q_v.cmpgt(splat_three).or(t_ambig);
            let eq_ok = ambig.andnot(q_v.cmpeq(t_v));
            let mism = eq_ok.or(ambig).andnot(ones);
            // score = +a | -b | -1; exact scalar arithmetic in i16
            let mut s_v = splat_nscore;
            s_v = splat_match.blend(s_v, eq_ok);
            s_v = splat_mism.blend(s_v, mism);
            let m_raw = ph_v.add(s_v);
            let m_v = ph_v.cmpeq(zero).andnot(m_raw);
            let h = m_v.max(pe_v).max(f_v);
            h1_v = h.blend(h1_v, in_cell);
            let upd = rowmax_v.cmpgt(h).andnot(in_cell);
            mj_v = j_v.blend(mj_v, upd);
            rowmax_v = h.blend(rowmax_v, upd);
            let t_del = m_v.sub(splat_oedel).max(zero);
            let e_new = pe_v.sub(splat_edel).max(t_del);
            let mut e_store = e_new.blend(pe_v, in_cell);
            e_store = zero.blend(e_store, at_end);
            e_store.store(&mut e_buf[col..]);
            let t_ins = m_v.sub(splat_oeins).max(zero);
            let f_new = f_v.sub(splat_eins).max(t_ins);
            f_v = f_new.blend(f_v, in_cell);
        }
        let mut h1_a = [0i16; MAX_LANES];
        let mut rowmax_a = [0i16; MAX_LANES];
        let mut mj_a = [0i16; MAX_LANES];
        h1_v.store(&mut h1_a[..lanes]);
        rowmax_v.store(&mut rowmax_a[..lanes]);
        mj_v.store(&mut mj_a[..lanes]);
        ph.end(Phase::Cells);

        ph.begin(Phase::BandAdjustII);
        for lane in 0..n {
            if !active[lane] {
                continue;
            }
            let h1 = h1_a[lane] as i32;
            if beg[lane].max(end[lane]) == qlen[lane] && gscore[lane] <= h1 {
                max_ie[lane] = i;
                gscore[lane] = h1;
            }
            let row_max = rowmax_a[lane] as i32;
            let mj = mj_a[lane] as i32;
            if row_max == 0 {
                dead[lane] = true;
                continue;
            }
            if row_max > max[lane] {
                max[lane] = row_max;
                max_i[lane] = i;
                max_j[lane] = mj;
                max_off[lane] = max_off[lane].max((mj - i).abs());
            } else if params.zdrop > 0 {
                if i - max_i[lane] > mj - max_j[lane] {
                    if max[lane] - row_max - ((i - max_i[lane]) - (mj - max_j[lane])) * params.e_del
                        > params.zdrop
                    {
                        dead[lane] = true;
                        continue;
                    }
                } else if max[lane]
                    - row_max
                    - ((mj - max_j[lane]) - (i - max_i[lane])) * params.e_ins
                    > params.zdrop
                {
                    dead[lane] = true;
                    continue;
                }
            }
            let mut j = beg[lane];
            while j < end[lane]
                && h_buf[j as usize * lanes + lane] == 0
                && e_buf[j as usize * lanes + lane] == 0
            {
                j += 1;
            }
            beg[lane] = j;
            let mut j = end[lane];
            while j >= beg[lane]
                && h_buf[j as usize * lanes + lane] == 0
                && e_buf[j as usize * lanes + lane] == 0
            {
                j -= 1;
            }
            end[lane] = if j + 2 < qlen[lane] {
                j + 2
            } else {
                qlen[lane]
            };
        }
        ph.end(Phase::BandAdjustII);
    }

    for lane in 0..n {
        out[lane] = ExtendResult {
            score: max[lane],
            qle: max_j[lane] + 1,
            tle: max_i[lane] + 1,
            gtle: max_ie[lane] + 1,
            gscore: gscore[lane],
            max_off: max_off[lane],
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NoPhase;
    use crate::scalar::extend_scalar;
    use crate::types::ExtendJob;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run_i16<const W: usize>(params: &ScoreParams, jobs: &[ExtendJob]) -> Vec<ExtendResult> {
        let refs: Vec<JobRef<'_>> = jobs.iter().map(JobRef::from).collect();
        let mut out = vec![ExtendResult::default(); jobs.len()];
        for (chunk, o) in refs.chunks(W).zip(out.chunks_mut(W)) {
            extend_chunk_i16::<W, _>(params, chunk, o, &mut NoPhase);
        }
        out
    }

    fn random_job(rng: &mut StdRng, max_len: usize, max_h0: i32) -> ExtendJob {
        let qlen = rng.random_range(1..max_len);
        let tlen = rng.random_range(1..max_len + 20);
        let mutrate = rng.random_range(0.0..0.35);
        let query: Vec<u8> = (0..qlen).map(|_| rng.random_range(0..4u8)).collect();
        let mut target: Vec<u8> = query
            .iter()
            .map(|&c| {
                if rng.random_bool(mutrate) {
                    rng.random_range(0..5u8)
                } else {
                    c
                }
            })
            .collect();
        target.resize(tlen, 1);
        let h0 = rng.random_range(1..max_h0);
        let w = rng.random_range(1..101);
        ExtendJob::new(query, target, h0, w)
    }

    #[test]
    fn matches_scalar_including_large_scores() {
        let params = ScoreParams::default();
        let mut rng = StdRng::seed_from_u64(46);
        // jobs far beyond 8-bit range: long queries and large h0
        let jobs: Vec<ExtendJob> = (0..150).map(|_| random_job(&mut rng, 600, 800)).collect();
        let got = run_i16::<16>(&params, &jobs);
        for (k, job) in jobs.iter().enumerate() {
            assert_eq!(got[k], extend_scalar(&params, job), "job {k}");
        }
    }

    #[test]
    fn matches_scalar_at_width_8_and_32() {
        let params = ScoreParams::default();
        let mut rng = StdRng::seed_from_u64(47);
        let jobs: Vec<ExtendJob> = (0..120).map(|_| random_job(&mut rng, 250, 300)).collect();
        let w8 = run_i16::<8>(&params, &jobs);
        let w32 = run_i16::<32>(&params, &jobs);
        for (k, job) in jobs.iter().enumerate() {
            let want = extend_scalar(&params, job);
            assert_eq!(w8[k], want, "W=8 job {k}");
            assert_eq!(w32[k], want, "W=32 job {k}");
        }
    }

    #[test]
    fn alternative_scoring_parameters() {
        let params = ScoreParams::new(2, 5, 5, 2, 7, 2, 40, 10);
        let mut rng = StdRng::seed_from_u64(48);
        let jobs: Vec<ExtendJob> = (0..100).map(|_| random_job(&mut rng, 200, 200)).collect();
        let got = run_i16::<16>(&params, &jobs);
        for (k, job) in jobs.iter().enumerate() {
            assert_eq!(got[k], extend_scalar(&params, job), "job {k}");
        }
    }

    /// Every native i16 backend compiled into this binary matches scalar.
    #[test]
    fn native_backends_match_scalar() {
        let params = ScoreParams::default();
        let mut rng = StdRng::seed_from_u64(49);
        let jobs: Vec<ExtendJob> = (0..120).map(|_| random_job(&mut rng, 400, 600)).collect();
        let refs: Vec<JobRef<'_>> = jobs.iter().map(JobRef::from).collect();

        fn run_v<V: SimdI16>(params: &ScoreParams, refs: &[JobRef<'_>]) -> Vec<ExtendResult> {
            let mut out = vec![ExtendResult::default(); refs.len()];
            for (chunk, o) in refs.chunks(V::LANES).zip(out.chunks_mut(V::LANES)) {
                extend_chunk_i16_v::<V, _>(params, chunk, o, &mut NoPhase);
            }
            out
        }

        let mut runs: Vec<(&str, Vec<ExtendResult>)> = Vec::new();
        #[cfg(target_arch = "x86_64")]
        runs.push(("sse2", run_v::<mem2_simd::x86::I16x8Sse2>(&params, &refs)));
        #[cfg(all(target_arch = "x86_64", target_feature = "sse4.1"))]
        runs.push((
            "sse4.1",
            run_v::<mem2_simd::x86::I16x8Sse41>(&params, &refs),
        ));
        #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
        runs.push(("avx2", run_v::<mem2_simd::x86::I16x16Avx>(&params, &refs)));
        #[cfg(target_arch = "aarch64")]
        runs.push(("neon", run_v::<mem2_simd::neon::I16x8Neon>(&params, &refs)));

        for (name, got) in runs {
            for (k, job) in jobs.iter().enumerate() {
                assert_eq!(got[k], extend_scalar(&params, job), "{name} job {k}");
            }
        }
    }
}
