//! Banded Smith–Waterman (BSW) seed extension — the paper's §5.
//!
//! * [`scalar`] is a line-by-line port of bwa's `ksw_extend2`: the banded,
//!   Z-drop-aborting, adaptive-band extension kernel whose exact semantics
//!   (including tie-breaking and the H/M separation that forbids adjacent
//!   insertions/deletions) define BWA-MEM's output.
//! * [`simd8`] / [`simd16`] are the paper's inter-task vectorized engines:
//!   the sequence pairs occupy the vector lanes, cells are computed
//!   for the union of the active bands, and per-lane masks maintain each
//!   pair's own band, abort state and best-score bookkeeping. 8-bit
//!   precision doubles the lane count when `h0 + qlen·match` fits. Both
//!   kernels are generic over the `mem2_simd` lane traits, so one source
//!   serves the portable emulation (any width) and every compiled
//!   `core::arch` backend (SSE2/SSE4.1/AVX2/NEON); the engine picks the
//!   backend at runtime via `mem2_simd::dispatch`.
//! * [`sort`] implements the length-sorting of §5.3.1 (radix sort) so that
//!   lanes processed together have similar lengths.
//! * [`engine`] dispatches jobs to precision classes and engines and
//!   restores original order, with optional per-phase timing for Table 8.
//! * [`global`] is the banded global aligner with traceback used to
//!   produce CIGARs in the SAM-formatting stage (bwa's `ksw_global2`).
//!
//! The crate-level invariant, enforced by property tests: **every engine
//! returns bit-identical [`ExtendResult`]s to the scalar kernel.**
//!
//! Key types: [`ScoreParams`] (scoring + derived 5×5 matrix),
//! [`ExtendJob`]/[`JobRef`]/[`ExtendResult`], and [`BswEngine`] (the
//! inter-task SIMD batch engine with precision grouping and band-doubling
//! retry). Introduced in PR 1; local SW for mate rescue in PR 3, native
//! register backends + clone-free job descriptors in PR 4.

pub mod engine;
pub mod global;
pub mod local;
pub mod scalar;
pub mod simd16;
pub mod simd8;
pub mod soa;
pub mod sort;
pub mod types;

pub use engine::{
    BswEngine, CellStats, EngineKind, NoPhase, Phase, PhaseBreakdown, PhaseSink, SimdChoice,
};
pub use global::{cigar_string, global_align, CigarOp};
pub use local::{local_align, LocalHit};
pub use scalar::{extend_scalar, extend_scalar_job, extend_scalar_profiled};
pub use sort::sort_jobs_by_length;
pub use types::{ExtendJob, ExtendResult, JobRef, ScoreParams};
