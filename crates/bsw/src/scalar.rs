//! Scalar banded extension — a faithful port of bwa's `ksw_extend2`.
//!
//! Every numeric decision (tie-breaking in the max tracking, the band
//! shrink rule `end = j + 2`, the Z-drop diagonal compensation, the H/M
//! separation) matches the C original; the SIMD engines are validated
//! against this function lane by lane.

use crate::engine::{NoPhase, PhaseSink};
use crate::types::{ExtendJob, ExtendResult, JobRef, ScoreParams};

/// Extend `job.query` against `job.target` starting from score `job.h0`.
pub fn extend_scalar(params: &ScoreParams, job: &ExtendJob) -> ExtendResult {
    extend_scalar_into(params, job, &mut Vec::new())
}

/// As [`extend_scalar`], reusing a scratch buffer across calls (the
/// paper's contiguous-allocation discipline; the classic pipeline passes
/// a fresh Vec to model the original's per-call allocation).
pub fn extend_scalar_into(
    params: &ScoreParams,
    job: &ExtendJob,
    eh_buf: &mut Vec<(i32, i32)>,
) -> ExtendResult {
    extend_scalar_profiled(params, job, eh_buf, &mut NoPhase)
}

/// As [`extend_scalar_into`], reporting per-row cell counts to a
/// [`PhaseSink`] (the Table 7 instruction-count proxy).
pub fn extend_scalar_profiled<PH: PhaseSink>(
    params: &ScoreParams,
    job: &ExtendJob,
    eh_buf: &mut Vec<(i32, i32)>,
    ph: &mut PH,
) -> ExtendResult {
    extend_scalar_job(params, JobRef::from(job), eh_buf, ph)
}

/// The scalar kernel proper, over a borrowed [`JobRef`] — what the
/// batch engine calls (no owned job required).
pub fn extend_scalar_job<PH: PhaseSink>(
    params: &ScoreParams,
    job: JobRef<'_>,
    eh_buf: &mut Vec<(i32, i32)>,
    ph: &mut PH,
) -> ExtendResult {
    let qlen = job.query.len();
    let tlen = job.target.len();
    let h0 = job.h0;
    assert!(h0 > 0, "extension must start from a positive seed score");
    let oe_del = params.o_del + params.e_del;
    let oe_ins = params.o_ins + params.e_ins;

    // score array: eh[j] = (H(i-1, j-1), E(i, j))
    eh_buf.clear();
    eh_buf.resize(qlen + 4, (0, 0));
    let eh: &mut [(i32, i32)] = &mut eh_buf[..];

    // first row: gap-open/extend chain away from the seed
    eh[0].0 = h0;
    eh[1].0 = if h0 > oe_ins { h0 - oe_ins } else { 0 };
    let mut j = 2;
    while j <= qlen && eh[j - 1].0 > params.e_ins {
        eh[j].0 = eh[j - 1].0 - params.e_ins;
        j += 1;
    }

    // clamp the band to the maximum useful width
    let msc = params.max_score();
    let max_ins = ((qlen as f64 * msc as f64 + params.end_bonus as f64 - params.o_ins as f64)
        / params.e_ins as f64
        + 1.0) as i32;
    let max_ins = max_ins.max(1);
    let mut w = job.w.min(max_ins);
    let max_del = ((qlen as f64 * msc as f64 + params.end_bonus as f64 - params.o_del as f64)
        / params.e_del as f64
        + 1.0) as i32;
    let max_del = max_del.max(1);
    w = w.min(max_del);

    // DP loop
    let mut max = h0;
    let mut max_i: i32 = -1;
    let mut max_j: i32 = -1;
    let mut max_ie: i32 = -1;
    let mut gscore: i32 = -1;
    let mut max_off: i32 = 0;
    let mut beg: i32 = 0;
    let mut end: i32 = qlen as i32;

    let mut i: i32 = 0;
    while (i as usize) < tlen {
        let mut f: i32 = 0;
        let mut row_max: i32 = 0;
        let mut mj: i32 = -1;
        let tbase = job.target[i as usize];
        // apply the band and the constraint
        if beg < i - w {
            beg = i - w;
        }
        if end > i + w + 1 {
            end = i + w + 1;
        }
        if end > qlen as i32 {
            end = qlen as i32;
        }
        // first column
        let mut h1: i32 = if beg == 0 {
            let v = h0 - (params.o_del + params.e_del * (i + 1));
            if v < 0 {
                0
            } else {
                v
            }
        } else {
            0
        };
        let mut j = beg;
        while j < end {
            // At the top of the loop: eh[j] = (H(i-1,j-1), E(i,j)),
            // f = F(i,j), h1 = H(i,j-1).
            let (ph, pe) = eh[j as usize];
            let mut m_val = ph;
            let mut e = pe;
            eh[j as usize].0 = h1; // H(i, j-1) for the next row
                                   // separating H and M disallows CIGARs like 100M3I3D20M
            m_val = if m_val != 0 {
                m_val + params.score(tbase, job.query[j as usize])
            } else {
                0
            };
            let mut h = if m_val > e { m_val } else { e };
            h = if h > f { h } else { f };
            h1 = h;
            mj = if row_max > h { mj } else { j };
            row_max = if row_max > h { row_max } else { h };
            let mut t = m_val - oe_del;
            t = t.max(0);
            e -= params.e_del;
            e = if e > t { e } else { t };
            eh[j as usize].1 = e; // E(i+1, j) for the next row
            let mut t = m_val - oe_ins;
            t = t.max(0);
            f -= params.e_ins;
            f = if f > t { f } else { t };
            j += 1;
        }
        eh[end as usize].0 = h1;
        eh[end as usize].1 = 0;
        ph.on_row(1, (end - beg).max(0) as u64);
        if j == qlen as i32 {
            max_ie = if gscore > h1 { max_ie } else { i };
            gscore = if gscore > h1 { gscore } else { h1 };
        }
        if row_max == 0 {
            break;
        }
        if row_max > max {
            max = row_max;
            max_i = i;
            max_j = mj;
            max_off = max_off.max((mj - i).abs());
        } else if params.zdrop > 0 {
            if i - max_i > mj - max_j {
                if max - row_max - ((i - max_i) - (mj - max_j)) * params.e_del > params.zdrop {
                    break;
                }
            } else if max - row_max - ((mj - max_j) - (i - max_i)) * params.e_ins > params.zdrop {
                break;
            }
        }
        // shrink the band for the next row: drop all-zero cells at both ends
        let mut j = beg;
        while j < end && eh[j as usize].0 == 0 && eh[j as usize].1 == 0 {
            j += 1;
        }
        beg = j;
        let mut j = end;
        while j >= beg && eh[j as usize].0 == 0 && eh[j as usize].1 == 0 {
            j -= 1;
        }
        end = if j + 2 < qlen as i32 {
            j + 2
        } else {
            qlen as i32
        };
        i += 1;
    }

    ExtendResult {
        score: max,
        qle: max_j + 1,
        tle: max_i + 1,
        gtle: max_ie + 1,
        gscore,
        max_off,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScoreParams {
        ScoreParams::default()
    }

    fn job(q: &[u8], t: &[u8], h0: i32, w: i32) -> ExtendJob {
        ExtendJob::new(q.to_vec(), t.to_vec(), h0, w)
    }

    #[test]
    fn perfect_match_extends_to_the_end() {
        let q = [0u8, 1, 2, 3, 0, 1, 2, 3];
        let r = extend_scalar(&params(), &job(&q, &q, 10, 100));
        assert_eq!(r.score, 18); // h0 + 8 matches
        assert_eq!(r.qle, 8);
        assert_eq!(r.tle, 8);
        assert_eq!(r.gscore, 18); // reaches the end of the query
        assert_eq!(r.gtle, 8);
        assert_eq!(r.max_off, 0);
    }

    #[test]
    fn single_mismatch_in_the_middle() {
        let q = [0u8, 0, 0, 0, 0, 0, 0, 0];
        let mut t = q;
        t[4] = 2;
        let r = extend_scalar(&params(), &job(&q, &t, 10, 100));
        // best stops before the mismatch (10+4=14) vs through (10+7-4=13)
        assert_eq!(r.score, 14);
        assert_eq!(r.qle, 4);
        // global: through everything = 10 + 7*1 - 4 = 13
        assert_eq!(r.gscore, 13);
        assert_eq!(r.gtle, 8);
    }

    #[test]
    fn deletion_in_query_handled_with_gap_penalty() {
        // target has 2 extra bases (deletion from query's perspective)
        let q = [0u8, 1, 2, 3, 0, 1, 2, 3];
        let t = [0u8, 1, 2, 3, 3, 3, 0, 1, 2, 3];
        let r = extend_scalar(&params(), &job(&q, &t, 20, 100));
        // all 8 matches minus gap open+2 extensions: 20 + 8 - (6+1) - 1 = 20
        assert_eq!(r.gscore, 20 + 8 - 8);
        assert_eq!(r.gtle, 10);
    }

    #[test]
    fn empty_target_returns_seed_score() {
        let q = [0u8, 1, 2];
        let r = extend_scalar(&params(), &job(&q, &[], 7, 100));
        assert_eq!(r.score, 7);
        assert_eq!(r.qle, 0);
        assert_eq!(r.tle, 0);
        assert_eq!(r.gscore, -1);
    }

    #[test]
    fn empty_query_consumes_nothing() {
        let t = [0u8, 1, 2];
        let r = extend_scalar(&params(), &job(&[], &t, 7, 100));
        assert_eq!(r.qle, 0);
        assert_eq!(r.score, 7);
    }

    #[test]
    fn zdrop_aborts_hopeless_extension() {
        // long target of junk after a short match: score drops, zdrop kicks in
        let mut q = vec![0u8; 200];
        let mut t = vec![0u8; 200];
        for v in q.iter_mut().skip(8) {
            *v = 1;
        }
        for v in t.iter_mut().skip(8) {
            *v = 2; // mismatches forever after position 8
        }
        let mut p = params();
        p.zdrop = 10;
        let r = extend_scalar(&p, &job(&q, &t, 30, 100));
        assert_eq!(r.score, 38); // 30 + 8 matches
        assert_eq!(r.qle, 8);
        // gscore never reached the end of the 200-base query
        assert_eq!(r.gscore, -1);
    }

    #[test]
    fn n_bases_score_minus_one() {
        let q = [0u8, 4, 0];
        let t = [0u8, 4, 0];
        let r = extend_scalar(&params(), &job(&q, &t, 10, 100));
        // N vs N scores -1, so best path = 10 + 1 - 1 + 1 = 11
        assert_eq!(r.gscore, 11);
    }

    #[test]
    fn reused_buffer_matches_fresh_buffer() {
        let q = [0u8, 1, 2, 3, 2, 1, 0, 3, 1];
        let t = [0u8, 1, 2, 0, 2, 1, 0, 3, 1, 2];
        let mut buf = Vec::new();
        let a = extend_scalar_into(&params(), &job(&q, &t, 12, 10), &mut buf);
        let b = extend_scalar_into(&params(), &job(&q, &t, 12, 10), &mut buf);
        let c = extend_scalar(&params(), &job(&q, &t, 12, 10));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn band_width_one_restricts_offsets() {
        let q = [0u8, 1, 2, 3, 0, 1, 2, 3];
        let t = [0u8, 1, 2, 3, 3, 3, 0, 1, 2, 3]; // needs offset 2
        let narrow = extend_scalar(&params(), &job(&q, &t, 20, 1));
        let wide = extend_scalar(&params(), &job(&q, &t, 20, 100));
        assert!(narrow.gscore < wide.gscore);
    }
}
