//! Shared BSW job/result/parameter types.

/// Alignment scoring parameters (bwa-mem defaults via [`ScoreParams::default`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScoreParams {
    /// Match score (`-A`, default 1).
    pub a: i32,
    /// Mismatch penalty as a positive number (`-B`, default 4).
    pub b: i32,
    /// Deletion open penalty (`-O`, default 6).
    pub o_del: i32,
    /// Deletion extension penalty (`-E`, default 1).
    pub e_del: i32,
    /// Insertion open penalty (default 6).
    pub o_ins: i32,
    /// Insertion extension penalty (default 1).
    pub e_ins: i32,
    /// Z-drop threshold (`-d`, default 100).
    pub zdrop: i32,
    /// Bonus for reaching the end of the query (`-L`, default 5).
    pub end_bonus: i32,
    /// 5×5 scoring matrix over {A,C,G,T,N} (bwa's `bwa_fill_scmat`).
    pub mat: [i8; 25],
}

impl Default for ScoreParams {
    fn default() -> Self {
        ScoreParams::new(1, 4, 6, 1, 6, 1, 100, 5)
    }
}

impl ScoreParams {
    /// Build parameters with the bwa matrix layout: `match` on the
    /// diagonal, `-mismatch` elsewhere, −1 against N.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        a: i32,
        b: i32,
        o_del: i32,
        e_del: i32,
        o_ins: i32,
        e_ins: i32,
        zdrop: i32,
        end_bonus: i32,
    ) -> Self {
        let mut mat = [0i8; 25];
        let mut k = 0;
        for i in 0..4 {
            for j in 0..4 {
                mat[k] = if i == j { a as i8 } else { -(b as i8) };
                k += 1;
            }
            mat[k] = -1; // ambiguous base
            k += 1;
        }
        for _ in 0..5 {
            mat[k] = -1;
            k += 1;
        }
        ScoreParams {
            a,
            b,
            o_del,
            e_del,
            o_ins,
            e_ins,
            zdrop,
            end_bonus,
            mat,
        }
    }

    /// Score of aligning base codes `x` against `y`.
    #[inline(always)]
    pub fn score(&self, x: u8, y: u8) -> i32 {
        self.mat[(x.min(4) as usize) * 5 + y.min(4) as usize] as i32
    }

    /// Maximum entry of the matrix (the match score).
    #[inline]
    pub fn max_score(&self) -> i32 {
        self.mat.iter().map(|&v| v as i32).max().unwrap_or(0)
    }
}

/// One seed-extension task: extend into `query` (length `qlen`) against
/// `target`, starting from seed score `h0`, within band `w`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtendJob {
    /// Query base codes (the unaligned read portion, possibly reversed
    /// for left extension).
    pub query: Vec<u8>,
    /// Target base codes (reference window).
    pub target: Vec<u8>,
    /// Initial score (seed score for the first extension).
    pub h0: i32,
    /// Band width for this job.
    pub w: i32,
}

impl ExtendJob {
    /// Convenience constructor.
    pub fn new(query: Vec<u8>, target: Vec<u8>, h0: i32, w: i32) -> Self {
        ExtendJob {
            query,
            target,
            h0,
            w,
        }
    }
}

/// A borrowed view of an extension task — what the engine and kernels
/// actually consume. `Copy`, so batching layers (precision grouping,
/// length sorting, lane chunking, the band-doubling retry) shuffle
/// 4-word descriptors instead of cloning sequence buffers.
#[derive(Clone, Copy, Debug)]
pub struct JobRef<'a> {
    /// Query base codes.
    pub query: &'a [u8],
    /// Target base codes.
    pub target: &'a [u8],
    /// Initial score.
    pub h0: i32,
    /// Band width for this job.
    pub w: i32,
}

impl<'a> JobRef<'a> {
    /// View `job` with its band replaced by `w` — the band-doubling
    /// retry without cloning the sequences.
    pub fn with_band(job: &'a ExtendJob, w: i32) -> Self {
        JobRef {
            query: &job.query,
            target: &job.target,
            h0: job.h0,
            w,
        }
    }
}

impl<'a> From<&'a ExtendJob> for JobRef<'a> {
    fn from(job: &'a ExtendJob) -> Self {
        JobRef::with_band(job, job.w)
    }
}

/// Extension outcome, field-for-field bwa's `ksw_extend2` outputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtendResult {
    /// Best local-extension score.
    pub score: i32,
    /// Query bases consumed at the best score (`max_j + 1`).
    pub qle: i32,
    /// Target bases consumed at the best score (`max_i + 1`).
    pub tle: i32,
    /// Target bases consumed at the best to-end-of-query score (`max_ie + 1`).
    pub gtle: i32,
    /// Best score reaching the end of the query (−1 if never reached).
    pub gscore: i32,
    /// Maximum distance from the diagonal seen at a best-score update.
    pub max_off: i32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matrix_matches_bwa_fill_scmat() {
        let p = ScoreParams::default();
        assert_eq!(p.score(0, 0), 1);
        assert_eq!(p.score(2, 2), 1);
        assert_eq!(p.score(0, 1), -4);
        assert_eq!(p.score(3, 0), -4);
        assert_eq!(p.score(0, 4), -1);
        assert_eq!(p.score(4, 4), -1);
        assert_eq!(p.max_score(), 1);
    }

    #[test]
    fn custom_scores() {
        let p = ScoreParams::new(2, 5, 6, 2, 7, 3, 50, 5);
        assert_eq!(p.score(1, 1), 2);
        assert_eq!(p.score(1, 2), -5);
        assert_eq!(p.max_score(), 2);
        assert_eq!(p.e_del, 2);
        assert_eq!(p.e_ins, 3);
    }
}
