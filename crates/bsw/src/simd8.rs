//! Inter-task vectorized BSW at 8-bit precision (paper §5.3–§5.4).
//!
//! `LANES` different sequence pairs occupy the byte lanes of one vector.
//! The row loop is global; within a row, cells are computed for the
//! **union** of all lanes' bands, and per-lane masks confine updates to
//! each lane's own `[beg, end]` range — the paper's "wasteful cell
//! computations".
//!
//! The kernel is generic over [`SimdU8`], so the very same source
//! instantiates the portable lane-emulated engine (any width) *and* the
//! real SSE2/SSE4.1/AVX2/NEON register engines — the engine picks the
//! instantiation at runtime via `mem2_simd::dispatch`. DP rows live in
//! plain `Vec<u8>` buffers strided by the lane count, loaded and stored
//! unaligned, so per-lane scalar bookkeeping indexes the same memory
//! the vector ops stream through.
//!
//! Unsigned saturating arithmetic reproduces the scalar kernel's
//! `max(…, 0)` clamps exactly (see the equivalence notes inline); the
//! engine is only fed jobs for which `h0 + qlen·match ≤ 249`, so no value
//! can saturate at 255. Per-row bookkeeping (band clamp, Z-drop, band
//! shrink) runs per lane in scalar registers — these are the paper's
//! "band adjustment" phases of Table 8.

use mem2_simd::{SimdU8, VecU8, MAX_LANES};

use crate::engine::{Phase, PhaseSink};
use crate::soa::{pack_queries, pack_targets};
use crate::types::{ExtendResult, JobRef, ScoreParams};

/// Largest `h0 + qlen·match` the 8-bit engine accepts.
pub const MAX_SCORE_8: i32 = 249;

/// Per-lane band clamp identical to the scalar kernel's preamble.
pub(crate) fn clamp_band(params: &ScoreParams, qlen: usize, w: i32) -> i32 {
    let msc = params.max_score();
    let max_ins = ((qlen as f64 * msc as f64 + params.end_bonus as f64 - params.o_ins as f64)
        / params.e_ins as f64
        + 1.0) as i32;
    let w = w.min(max_ins.max(1));
    let max_del = ((qlen as f64 * msc as f64 + params.end_bonus as f64 - params.o_del as f64)
        / params.e_del as f64
        + 1.0) as i32;
    w.min(max_del.max(1))
}

/// Portable-backend entry at const width `W` (16 = SSE-like,
/// 32 = AVX2-like, 64 = AVX-512-like).
pub fn extend_chunk_u8<const W: usize, PH: PhaseSink>(
    params: &ScoreParams,
    jobs: &[JobRef<'_>],
    out: &mut [ExtendResult],
    ph: &mut PH,
) {
    extend_chunk_u8_v::<VecU8<W>, PH>(params, jobs, out, ph)
}

/// Extend ≤ `V::LANES` jobs simultaneously. Caller guarantees for every
/// job: `qlen ≥ 1`, `tlen ≥ 1`, `qlen ≤ 249`, `h0 ≥ 1`, and
/// `h0 + qlen·match ≤ MAX_SCORE_8`.
pub fn extend_chunk_u8_v<V: SimdU8, PH: PhaseSink>(
    params: &ScoreParams,
    jobs: &[JobRef<'_>],
    out: &mut [ExtendResult],
    ph: &mut PH,
) {
    let lanes = V::LANES;
    let n = jobs.len();
    assert!(n <= lanes && n == out.len() && lanes <= MAX_LANES);

    ph.begin(Phase::Preproc);
    // --- AoS -> SoA ---
    let mut q_soa = Vec::new();
    let mut t_soa = Vec::new();
    let qmax = pack_queries(jobs, lanes, &mut q_soa);
    let tmax = pack_targets(jobs, lanes, &mut t_soa);

    // --- per-lane scalar state ---
    let mut qlen = [0i32; MAX_LANES];
    let mut tlen = [0i32; MAX_LANES];
    let mut h0 = [0i32; MAX_LANES];
    let mut w_lane = [0i32; MAX_LANES];
    let mut beg = [0i32; MAX_LANES];
    let mut end = [0i32; MAX_LANES];
    let mut max = [0i32; MAX_LANES];
    let mut max_i = [-1i32; MAX_LANES];
    let mut max_j = [-1i32; MAX_LANES];
    let mut max_ie = [-1i32; MAX_LANES];
    let mut gscore = [-1i32; MAX_LANES];
    let mut max_off = [0i32; MAX_LANES];
    let mut dead = [true; MAX_LANES]; // lanes beyond `n` never run
    for (lane, job) in jobs.iter().enumerate() {
        let ql = job.query.len();
        debug_assert!(ql >= 1 && !job.target.is_empty());
        debug_assert!(job.h0 >= 1 && job.h0 + ql as i32 * params.max_score() <= MAX_SCORE_8);
        qlen[lane] = ql as i32;
        tlen[lane] = job.target.len() as i32;
        h0[lane] = job.h0;
        w_lane[lane] = clamp_band(params, ql, job.w);
        beg[lane] = 0;
        end[lane] = ql as i32;
        max[lane] = job.h0;
        dead[lane] = false;
    }

    // --- DP rows, strided by lane: h_buf[j*lanes + lane] = H(i-1, j-1),
    //     e_buf[j*lanes + lane] = E(i, j) ---
    let mut h_buf = vec![0u8; (qmax + 2) * lanes];
    let mut e_buf = vec![0u8; (qmax + 2) * lanes];
    let oe_ins = params.o_ins + params.e_ins;
    let oe_del = params.o_del + params.e_del;
    for lane in 0..n {
        // first row: gap chain away from the seed (scalar preamble)
        h_buf[lane] = h0[lane] as u8;
        if qlen[lane] >= 1 {
            h_buf[lanes + lane] = if h0[lane] > oe_ins {
                (h0[lane] - oe_ins) as u8
            } else {
                0
            };
        }
        let mut j = 2;
        while j <= qlen[lane] as usize && h_buf[(j - 1) * lanes + lane] as i32 > params.e_ins {
            h_buf[j * lanes + lane] = h_buf[(j - 1) * lanes + lane] - params.e_ins as u8;
            j += 1;
        }
    }
    ph.end(Phase::Preproc);

    let splat_a = V::splat(params.a as u8);
    let splat_b = V::splat(params.b as u8);
    let splat_one = V::splat(1);
    let splat_three = V::splat(3);
    let splat_edel = V::splat(params.e_del as u8);
    let splat_eins = V::splat(params.e_ins as u8);
    let splat_oedel = V::splat(oe_del as u8);
    let splat_oeins = V::splat(oe_ins as u8);
    let ones = V::splat(0xFF);
    let zero = V::zero();

    for i in 0..tmax as i32 {
        ph.begin(Phase::BandAdjustI);
        // --- per-lane band clamp + first-column init (scalar, per row) ---
        let mut active = [false; MAX_LANES];
        let mut any_active = false;
        let mut h1_init = [0u8; MAX_LANES];
        let mut union_beg = i32::MAX;
        let mut union_end = 0i32; // inclusive of the eh[end] write
        for lane in 0..n {
            if dead[lane] || i >= tlen[lane] {
                continue;
            }
            active[lane] = true;
            any_active = true;
            if beg[lane] < i - w_lane[lane] {
                beg[lane] = i - w_lane[lane];
            }
            if end[lane] > i + w_lane[lane] + 1 {
                end[lane] = i + w_lane[lane] + 1;
            }
            if end[lane] > qlen[lane] {
                end[lane] = qlen[lane];
            }
            h1_init[lane] = if beg[lane] == 0 {
                (h0[lane] - (params.o_del + params.e_del * (i + 1))).max(0) as u8
            } else {
                0
            };
            if beg[lane] <= end[lane] {
                union_beg = union_beg.min(beg[lane]);
                union_end = union_end.max(end[lane]);
            }
        }
        ph.end(Phase::BandAdjustI);
        if !any_active {
            break;
        }

        ph.begin(Phase::Cells);
        // --- build row vectors ---
        let mut act_a = [0u8; MAX_LANES];
        // park inactive lanes on an empty range past any real j
        let mut beg_a = [0xFFu8; MAX_LANES];
        let mut end_a = [0xFEu8; MAX_LANES];
        for lane in 0..n {
            if active[lane] && beg[lane] <= end[lane] {
                // beg <= end <= qlen <= 249, so the u8 casts are exact;
                // collapsed bands (beg > end, where beg may exceed 255)
                // stay parked and die in the row epilogue
                act_a[lane] = 0xFF;
                beg_a[lane] = beg[lane] as u8;
                end_a[lane] = end[lane] as u8;
            }
        }
        let act_v = V::load(&act_a[..lanes]);
        let beg_v = V::load(&beg_a[..lanes]);
        let end_v = V::load(&end_a[..lanes]);
        let mut h1_v = V::load(&h1_init[..lanes]);
        let mut f_v = zero;
        let mut rowmax_v = zero;
        let mut mj_v = zero;
        let t_v = V::load(&t_soa[(i as usize) * lanes..]);
        let t_ambig = t_v.cmpgt(splat_three);

        let n_live = active[..n].iter().filter(|&&a| a).count() as u64;
        ph.on_row(
            n_live,
            n_live * (union_end - union_beg.min(union_end)).max(0) as u64,
        );
        for j in union_beg.max(0)..=union_end {
            let col = (j as usize) * lanes;
            let j_v = V::splat(j as u8);
            let in_cell = j_v.cmpge(beg_v).and(end_v.cmpgt(j_v)).and(act_v);
            let at_end = j_v.cmpeq(end_v).and(act_v);
            let touched = in_cell.or(at_end);
            if touched.all_zero() {
                continue;
            }
            let ph_v = V::load(&h_buf[col..]);
            let pe_v = V::load(&e_buf[col..]);
            // store H(i, j-1) where this lane touches column j
            h1_v.blend(ph_v, touched).store(&mut h_buf[col..]);

            let q_v = V::load(&q_soa[col..]);
            // score selection: +a on match, -b on mismatch, -1 against N
            let ambig = q_v.cmpgt(splat_three).or(t_ambig);
            let eq_ok = ambig.andnot(q_v.cmpeq(t_v));
            let mism = eq_ok.or(ambig).andnot(ones);
            let add_v = splat_a.and(eq_ok);
            let sub_v = splat_b.and(mism).or(splat_one.and(ambig));
            // M = H(i-1,j-1) != 0 ? H + s : 0.
            // Saturating subs floors at 0, which matches the scalar kernel:
            // a negative scalar M only ever feeds max(…, 0) clamps.
            let m_raw = ph_v.adds(add_v).subs(sub_v);
            let m_v = ph_v.cmpeq(zero).andnot(m_raw);
            let h = m_v.max(pe_v).max(f_v);
            h1_v = h.blend(h1_v, in_cell);
            // best-in-row tracking; scalar takes the later j on ties
            let upd = rowmax_v.cmpgt(h).andnot(in_cell);
            mj_v = j_v.blend(mj_v, upd);
            rowmax_v = h.blend(rowmax_v, upd);
            // E(i+1, j) and F(i, j+1)
            let t_del = m_v.subs(splat_oedel);
            let e_new = pe_v.subs(splat_edel).max(t_del);
            let mut e_store = e_new.blend(pe_v, in_cell);
            e_store = zero.blend(e_store, at_end);
            e_store.store(&mut e_buf[col..]);
            let t_ins = m_v.subs(splat_oeins);
            let f_new = f_v.subs(splat_eins).max(t_ins);
            f_v = f_new.blend(f_v, in_cell);
        }
        let mut h1_a = [0u8; MAX_LANES];
        let mut rowmax_a = [0u8; MAX_LANES];
        let mut mj_a = [0u8; MAX_LANES];
        h1_v.store(&mut h1_a[..lanes]);
        rowmax_v.store(&mut rowmax_a[..lanes]);
        mj_v.store(&mut mj_a[..lanes]);
        ph.end(Phase::Cells);

        ph.begin(Phase::BandAdjustII);
        // --- per-lane row epilogue (scalar) ---
        for lane in 0..n {
            if !active[lane] {
                continue;
            }
            let h1 = h1_a[lane] as i32;
            // the scalar loop variable ends at max(beg, end): with a
            // collapsed band (beg >= end) the inner loop never runs
            if beg[lane].max(end[lane]) == qlen[lane] && gscore[lane] <= h1 {
                max_ie[lane] = i;
                gscore[lane] = h1;
            }
            let row_max = rowmax_a[lane] as i32;
            let mj = mj_a[lane] as i32;
            if row_max == 0 {
                dead[lane] = true;
                continue;
            }
            if row_max > max[lane] {
                max[lane] = row_max;
                max_i[lane] = i;
                max_j[lane] = mj;
                max_off[lane] = max_off[lane].max((mj - i).abs());
            } else if params.zdrop > 0 {
                if i - max_i[lane] > mj - max_j[lane] {
                    if max[lane] - row_max - ((i - max_i[lane]) - (mj - max_j[lane])) * params.e_del
                        > params.zdrop
                    {
                        dead[lane] = true;
                        continue;
                    }
                } else if max[lane]
                    - row_max
                    - ((mj - max_j[lane]) - (i - max_i[lane])) * params.e_ins
                    > params.zdrop
                {
                    dead[lane] = true;
                    continue;
                }
            }
            // shrink the band: drop all-zero cells at both ends
            let mut j = beg[lane];
            while j < end[lane]
                && h_buf[j as usize * lanes + lane] == 0
                && e_buf[j as usize * lanes + lane] == 0
            {
                j += 1;
            }
            beg[lane] = j;
            let mut j = end[lane];
            while j >= beg[lane]
                && h_buf[j as usize * lanes + lane] == 0
                && e_buf[j as usize * lanes + lane] == 0
            {
                j -= 1;
            }
            end[lane] = if j + 2 < qlen[lane] {
                j + 2
            } else {
                qlen[lane]
            };
        }
        ph.end(Phase::BandAdjustII);
    }

    for lane in 0..n {
        out[lane] = ExtendResult {
            score: max[lane],
            qle: max_j[lane] + 1,
            tle: max_i[lane] + 1,
            gtle: max_ie[lane] + 1,
            gscore: gscore[lane],
            max_off: max_off[lane],
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NoPhase;
    use crate::scalar::extend_scalar;
    use crate::types::ExtendJob;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run_u8<const W: usize>(params: &ScoreParams, jobs: &[ExtendJob]) -> Vec<ExtendResult> {
        let refs: Vec<JobRef<'_>> = jobs.iter().map(JobRef::from).collect();
        let mut out = vec![ExtendResult::default(); jobs.len()];
        for (chunk, o) in refs.chunks(W).zip(out.chunks_mut(W)) {
            extend_chunk_u8::<W, _>(params, chunk, o, &mut NoPhase);
        }
        out
    }

    fn random_job(rng: &mut StdRng, max_len: usize) -> ExtendJob {
        let qlen = rng.random_range(1..max_len);
        let tlen = rng.random_range(1..max_len + 10);
        let mutrate = rng.random_range(0.0..0.4);
        let query: Vec<u8> = (0..qlen).map(|_| rng.random_range(0..4u8)).collect();
        // target: mutated copy of query so there is real signal
        let mut target: Vec<u8> = query
            .iter()
            .map(|&c| {
                if rng.random_bool(mutrate) {
                    rng.random_range(0..5u8)
                } else {
                    c
                }
            })
            .collect();
        target.resize(tlen, 0);
        for t in target.iter_mut().skip(qlen.min(tlen)) {
            *t = rng.random_range(0..4u8);
        }
        let h0 = rng.random_range(1..40);
        let w = rng.random_range(1..101);
        ExtendJob::new(query, target, h0, w)
    }

    #[test]
    fn matches_scalar_on_random_jobs_width32() {
        let params = ScoreParams::default();
        let mut rng = StdRng::seed_from_u64(42);
        let jobs: Vec<ExtendJob> = (0..400).map(|_| random_job(&mut rng, 150)).collect();
        let got = run_u8::<32>(&params, &jobs);
        for (k, job) in jobs.iter().enumerate() {
            let want = extend_scalar(&params, job);
            assert_eq!(got[k], want, "job {k}: {job:?}");
        }
    }

    #[test]
    fn matches_scalar_on_random_jobs_width64_and_16() {
        let params = ScoreParams::default();
        let mut rng = StdRng::seed_from_u64(43);
        let jobs: Vec<ExtendJob> = (0..200).map(|_| random_job(&mut rng, 120)).collect();
        let w64 = run_u8::<64>(&params, &jobs);
        let w16 = run_u8::<16>(&params, &jobs);
        for (k, job) in jobs.iter().enumerate() {
            let want = extend_scalar(&params, job);
            assert_eq!(w64[k], want, "W=64 job {k}");
            assert_eq!(w16[k], want, "W=16 job {k}");
        }
    }

    #[test]
    fn heterogeneous_lengths_in_one_chunk() {
        let params = ScoreParams::default();
        let mut rng = StdRng::seed_from_u64(44);
        // extreme length mix in a single chunk
        let mut jobs = vec![
            ExtendJob::new(vec![0], vec![0], 1, 100),
            ExtendJob::new(vec![1; 200], vec![1; 230], 40, 100),
            ExtendJob::new(vec![2; 3], vec![3; 100], 5, 2),
        ];
        for _ in 0..29 {
            jobs.push(random_job(&mut rng, 60));
        }
        let got = run_u8::<32>(&params, &jobs);
        for (k, job) in jobs.iter().enumerate() {
            assert_eq!(got[k], extend_scalar(&params, job), "job {k}");
        }
    }

    #[test]
    fn zdrop_and_tiny_bands_lanewise() {
        let params = ScoreParams {
            zdrop: 5,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(45);
        let jobs: Vec<ExtendJob> = (0..64)
            .map(|_| {
                let mut j = random_job(&mut rng, 100);
                j.w = rng.random_range(1..4);
                j
            })
            .collect();
        let got = run_u8::<64>(&params, &jobs);
        for (k, job) in jobs.iter().enumerate() {
            assert_eq!(got[k], extend_scalar(&params, job), "job {k}");
        }
    }

    /// The same generic kernel instantiated with every native backend
    /// compiled into this binary must match the scalar kernel too.
    #[test]
    fn native_backends_match_scalar() {
        let params = ScoreParams::default();
        let mut rng = StdRng::seed_from_u64(46);
        let jobs: Vec<ExtendJob> = (0..150).map(|_| random_job(&mut rng, 150)).collect();
        let refs: Vec<JobRef<'_>> = jobs.iter().map(JobRef::from).collect();

        fn run_v<V: SimdU8>(params: &ScoreParams, refs: &[JobRef<'_>]) -> Vec<ExtendResult> {
            let mut out = vec![ExtendResult::default(); refs.len()];
            for (chunk, o) in refs.chunks(V::LANES).zip(out.chunks_mut(V::LANES)) {
                extend_chunk_u8_v::<V, _>(params, chunk, o, &mut NoPhase);
            }
            out
        }

        let mut runs: Vec<(&str, Vec<ExtendResult>)> = Vec::new();
        #[cfg(target_arch = "x86_64")]
        runs.push(("sse2", run_v::<mem2_simd::x86::U8x16Sse2>(&params, &refs)));
        #[cfg(all(target_arch = "x86_64", target_feature = "sse4.1"))]
        runs.push((
            "sse4.1",
            run_v::<mem2_simd::x86::U8x16Sse41>(&params, &refs),
        ));
        #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
        runs.push(("avx2", run_v::<mem2_simd::x86::U8x32Avx>(&params, &refs)));
        #[cfg(target_arch = "aarch64")]
        runs.push(("neon", run_v::<mem2_simd::neon::U8x16Neon>(&params, &refs)));

        for (name, got) in runs {
            for (k, job) in jobs.iter().enumerate() {
                assert_eq!(got[k], extend_scalar(&params, job), "{name} job {k}");
            }
        }
    }
}
