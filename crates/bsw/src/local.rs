//! Full local Smith–Waterman alignment (bwa's `ksw_align`), used by mate
//! rescue: unlike the extension kernels, there is no seed to extend from —
//! the whole query is aligned freely against a reference window implied by
//! the insert-size distribution.
//!
//! Two passes of the same affine-gap scan: the forward pass finds the best
//! score and its *end* cell (plus `score2`, the best score ending far away
//! on the target — bwa's `KSW_XSUBO` sub-optimal, which feeds the
//! tandem-repeat MAPQ cap); the reverse pass over the reversed prefixes
//! recovers the *start* cell. O(|query|) memory, O(|query|·|target|) time.

use crate::types::ScoreParams;

/// Best local alignment of a query inside a target window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalHit {
    /// Best local score.
    pub score: i32,
    /// Query interval `[qb, qe)` of the alignment.
    pub qb: i32,
    /// Query end (exclusive).
    pub qe: i32,
    /// Target interval `[tb, te)` of the alignment.
    pub tb: i32,
    /// Target end (exclusive).
    pub te: i32,
    /// Best score ending ≥ `|query|` target positions away from `te`
    /// (0 when no such secondary cluster exists).
    pub score2: i32,
}

/// One forward scan: returns `(best, end_i, end_j, colmax)` where
/// `end_i`/`end_j` are 1-based inclusive target/query indices of the best
/// cell (first encountered in scan order on ties) and `colmax[i]` is the
/// best score in target row `i`.
fn scan(
    p: &ScoreParams,
    query: &[u8],
    target: &[u8],
    colmax: Option<&mut Vec<i32>>,
) -> (i32, usize, usize) {
    let qlen = query.len();
    // h[j] = H(i-1, j), e[j] = E(i, j) carried down a column
    let mut h = vec![0i32; qlen + 1];
    let mut e = vec![0i32; qlen + 1];
    let (mut best, mut bi, mut bj) = (0i32, 0usize, 0usize);
    let mut cm = colmax;
    for (i, &t) in target.iter().enumerate() {
        let mut diag = h[0]; // H(i-1, j-1)
        let mut f = 0i32; // F(i, j): gap consuming query
        let mut rowmax = 0i32;
        for (j, &q) in query.iter().enumerate() {
            let up = h[j + 1];
            e[j + 1] = (up - p.o_del - p.e_del).max(e[j + 1] - p.e_del).max(0);
            let mut score = (diag + p.score(t, q)).max(e[j + 1]).max(f).max(0);
            if score < 0 {
                score = 0;
            }
            f = (score - p.o_ins - p.e_ins).max(f - p.e_ins).max(0);
            diag = up;
            h[j + 1] = score;
            if score > rowmax {
                rowmax = score;
            }
            if score > best {
                best = score;
                bi = i + 1;
                bj = j + 1;
            }
        }
        if let Some(cm) = cm.as_deref_mut() {
            cm.push(rowmax);
        }
    }
    (best, bi, bj)
}

/// Align `query` locally against `target`; `None` when nothing scores
/// above zero. Coordinates are half-open on both sequences.
pub fn local_align(p: &ScoreParams, query: &[u8], target: &[u8]) -> Option<LocalHit> {
    if query.is_empty() || target.is_empty() {
        return None;
    }
    let mut colmax = Vec::with_capacity(target.len());
    let (score, te, qe) = scan(p, query, target, Some(&mut colmax));
    if score <= 0 {
        return None;
    }
    // sub-optimal: the best score ending at least |query| rows from te
    // (a genuinely distinct placement, not the best cell's own shoulder)
    let score2 = colmax
        .iter()
        .enumerate()
        .filter(|&(i, _)| (i + 1).abs_diff(te) >= query.len())
        .map(|(_, &v)| v)
        .max()
        .unwrap_or(0);
    // reverse pass over the prefixes recovers the start cell
    let qrev: Vec<u8> = query[..qe].iter().rev().copied().collect();
    let trev: Vec<u8> = target[..te].iter().rev().copied().collect();
    let (rscore, ri, rj) = scan(p, &qrev, &trev, None);
    debug_assert_eq!(rscore, score, "reverse pass must reproduce the score");
    Some(LocalHit {
        score,
        qb: (qe - rj) as i32,
        qe: qe as i32,
        tb: (te - ri) as i32,
        te: te as i32,
        score2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ScoreParams {
        ScoreParams::default()
    }

    /// Deterministic aperiodic base sequence (LCG), so substrings have a
    /// unique placement — linear-congruence-mod-4 patterns are periodic
    /// and would match everywhere.
    fn seq(n: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8 & 3
            })
            .collect()
    }

    #[test]
    fn exact_substring_scores_full_match() {
        let target = seq(60, 1);
        let query = target[20..40].to_vec();
        let hit = local_align(&p(), &query, &target).expect("hit");
        assert_eq!(hit.score, 20);
        assert_eq!((hit.qb, hit.qe), (0, 20));
        assert_eq!((hit.tb, hit.te), (20, 40));
    }

    #[test]
    fn mismatch_and_gap_are_handled() {
        let target = seq(80, 2);
        // query = target[10..40) with one substitution and one deletion
        let mut query = target[10..40].to_vec();
        query[5] = (query[5] + 1) & 3;
        query.remove(20);
        let hit = local_align(&p(), &query, &target).expect("hit");
        // 28 matches - 4 (mismatch) - 7 (gap open+ext) = 17
        assert_eq!(hit.score, 17);
        assert_eq!((hit.tb, hit.te), (10, 40));
        assert_eq!((hit.qb, hit.qe), (0, 29));
    }

    #[test]
    fn soft_ends_clip_instead_of_paying() {
        let target = seq(50, 3);
        // 5 junk bases, 20 matching, 5 junk
        let mut query = vec![0u8; 5];
        query.extend_from_slice(&target[15..35]);
        query.extend(vec![0u8; 5]);
        // force the junk flanks to mismatch everywhere they land
        for k in 0..5 {
            query[k] = (target[10 + k] + 1) & 3;
            query[25 + k] = (target[35 + k] + 1) & 3;
        }
        let hit = local_align(&p(), &query, &target).expect("hit");
        assert_eq!(hit.score, 20);
        assert_eq!((hit.qb, hit.qe), (5, 25));
        assert_eq!((hit.tb, hit.te), (15, 35));
    }

    #[test]
    fn no_similarity_returns_none() {
        // query of base 0 vs target of base 1: every cell mismatches
        let query = vec![0u8; 10];
        let target = vec![1u8; 30];
        assert_eq!(local_align(&p(), &query, &target), None);
        assert_eq!(local_align(&p(), &[], &target), None);
        assert_eq!(local_align(&p(), &query, &[]), None);
    }

    #[test]
    fn score2_sees_a_second_placement() {
        let unit = seq(20, 5);
        // two copies of the unit far apart, second copy degraded
        let mut target = vec![0u8; 100];
        target[10..30].copy_from_slice(&unit);
        target[70..90].copy_from_slice(&unit);
        target[75] = (target[75] + 1) & 3;
        let hit = local_align(&p(), &unit, &target).expect("hit");
        assert_eq!(hit.score, 20);
        assert_eq!((hit.tb, hit.te), (10, 30));
        // degraded copy: 19 matches - 4 = 15
        assert_eq!(hit.score2, 15);
    }

    #[test]
    fn revcomp_query_does_not_match_forward() {
        let target = seq(40, 4);
        let query: Vec<u8> = target[5..25].iter().rev().map(|&c| 3 - c).collect();
        let fwd = local_align(&p(), &target[5..25], &target).expect("hit");
        assert_eq!(fwd.score, 20);
        let rc = local_align(&p(), &query, &target);
        assert!(rc.is_none() || rc.unwrap().score < 20);
    }
}
