//! Batch dispatch: precision classes, optional length sorting, chunking
//! into SIMD lanes, backend selection, result scatter, and Table 8 phase
//! timing.

use std::fmt;
use std::time::{Duration, Instant};

use mem2_simd::{dispatch, Backend};

use crate::scalar::extend_scalar_job;
use crate::simd16::{extend_chunk_i16, extend_chunk_i16_v, MAX_SCORE_16};
use crate::simd8::{extend_chunk_u8, extend_chunk_u8_v, MAX_SCORE_8};
use crate::sort::sort_jobs_by_length;
use crate::types::{ExtendJob, ExtendResult, JobRef, ScoreParams};

/// BSW execution phases (paper Table 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Sorting, AoS→SoA conversion, buffer initialization.
    Preproc,
    /// Applying the band constraint at the top of each row.
    BandAdjustI,
    /// The vectorized cell-computation loop.
    Cells,
    /// Zero-trim scans, Z-drop and bookkeeping after each row.
    BandAdjustII,
}

/// Phase-timing callbacks; [`NoPhase`] compiles to nothing.
pub trait PhaseSink {
    /// Enter a phase.
    fn begin(&mut self, p: Phase);
    /// Leave a phase.
    fn end(&mut self, p: Phase);
    /// One DP row completed: `lanes` sequence pairs were live and
    /// `cells` matrix cells were computed for them in total (for the
    /// vector kernels, `cells` covers the whole union band — the
    /// "wasteful cells" of §5.3 are included). Default: ignored.
    #[inline(always)]
    fn on_row(&mut self, lanes: u64, cells: u64) {
        let _ = (lanes, cells);
    }
}

/// Zero-cost sink for production runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoPhase;

impl PhaseSink for NoPhase {
    #[inline(always)]
    fn begin(&mut self, _p: Phase) {}
    #[inline(always)]
    fn end(&mut self, _p: Phase) {}
}

/// Row/cell statistics collector (Table 7's instruction-count proxy).
#[derive(Clone, Copy, Debug, Default)]
pub struct CellStats {
    /// DP rows processed (vector kernels: union rows).
    pub rows: u64,
    /// Lane-rows processed (sum of live lanes over rows).
    pub lane_rows: u64,
    /// Cells computed (vector kernels: union-band cells across lanes,
    /// including wasted ones).
    pub cells: u64,
}

impl PhaseSink for CellStats {
    #[inline(always)]
    fn begin(&mut self, _p: Phase) {}
    #[inline(always)]
    fn end(&mut self, _p: Phase) {}
    #[inline(always)]
    fn on_row(&mut self, lanes: u64, cells: u64) {
        self.rows += 1;
        self.lane_rows += lanes;
        self.cells += cells;
    }
}

/// Accumulated per-phase wall time.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseBreakdown {
    /// Total time per phase, indexed by `Phase as usize`.
    pub totals: [Duration; 4],
    started: Option<(Phase, Instant)>,
}

impl PhaseBreakdown {
    /// Percentage share of each phase.
    pub fn percentages(&self) -> [f64; 4] {
        let sum: f64 = self.totals.iter().map(|d| d.as_secs_f64()).sum();
        if sum == 0.0 {
            return [0.0; 4];
        }
        let mut out = [0.0; 4];
        for (o, d) in out.iter_mut().zip(&self.totals) {
            *o = 100.0 * d.as_secs_f64() / sum;
        }
        out
    }
}

impl PhaseSink for PhaseBreakdown {
    fn begin(&mut self, p: Phase) {
        self.started = Some((p, Instant::now()));
    }
    fn end(&mut self, p: Phase) {
        if let Some((started_p, t)) = self.started.take() {
            debug_assert_eq!(started_p, p);
            self.totals[p as usize] += t.elapsed();
        }
    }
}

/// Which kernel executes the batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The original scalar kernel for every job.
    Scalar,
    /// Inter-task SIMD with the given number of 8-bit lanes
    /// (64 = AVX-512-like, 32 = AVX2/AVX2-like, 16 = SSE/NEON-like);
    /// 16-bit jobs use half as many lanes.
    Vector {
        /// 8-bit lane count; must be 16, 32 or 64.
        width: usize,
    },
}

/// User-facing SIMD selection (the `--simd` flag), resolved to an
/// engine configuration by [`BswEngine::for_choice`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimdChoice {
    /// Widest native backend if one is compiled in and the CPU has it,
    /// else the portable emulation — the production default.
    #[default]
    Auto,
    /// The original scalar kernel (no inter-task vectorization at all).
    Scalar,
    /// The portable lane-emulated engine at the AVX-512-like width,
    /// regardless of available native backends.
    Portable,
    /// The detected native backend; degrades to portable only when the
    /// build/CPU offers none.
    Native,
}

impl SimdChoice {
    /// Parse a `--simd` argument.
    pub fn parse(s: &str) -> Option<SimdChoice> {
        Some(match s {
            "auto" => SimdChoice::Auto,
            "scalar" => SimdChoice::Scalar,
            "portable" => SimdChoice::Portable,
            "native" => SimdChoice::Native,
            _ => return None,
        })
    }

    /// The accepted flag values, for usage messages.
    pub const VALUES: &'static str = "auto|scalar|portable|native";
}

impl fmt::Display for SimdChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SimdChoice::Auto => "auto",
            SimdChoice::Scalar => "scalar",
            SimdChoice::Portable => "portable",
            SimdChoice::Native => "native",
        })
    }
}

/// Batch BSW engine (paper §5): precision selection per job, optional
/// length sorting, chunked SIMD execution, original-order results.
#[derive(Clone, Debug)]
pub struct BswEngine {
    /// Scoring parameters.
    pub params: ScoreParams,
    /// Kernel selection.
    pub kind: EngineKind,
    /// Vector backend executing the chunks. Native backends apply when
    /// `kind` is `Vector` with exactly their lane width
    /// ([`Backend::u8_lanes`]); any other combination falls back to the
    /// portable emulation at the requested width, so width-ablation
    /// configurations keep working unchanged.
    pub backend: Backend,
    /// Sort jobs by length before filling lanes (§5.3.1).
    pub sort_by_length: bool,
    /// Send 8-bit-eligible jobs to the 16-bit kernel anyway (Table 6's
    /// 16-bit rows).
    pub force_16bit: bool,
}

impl BswEngine {
    /// The paper's best config on the running machine: the widest
    /// detected native backend (or the portable 64-lane emulation),
    /// with length sorting.
    pub fn optimized(params: ScoreParams) -> Self {
        Self::with_backend(params, dispatch::selected())
    }

    /// Vector engine pinned to a specific backend at that backend's
    /// natural width.
    pub fn with_backend(params: ScoreParams, backend: Backend) -> Self {
        BswEngine {
            params,
            kind: EngineKind::Vector {
                width: backend.u8_lanes(),
            },
            backend,
            sort_by_length: true,
            force_16bit: false,
        }
    }

    /// The portable lane-emulated engine at the AVX-512-like width —
    /// the pre-backend default, kept as ground truth.
    pub fn portable(params: ScoreParams) -> Self {
        Self::with_backend(params, Backend::Portable)
    }

    /// The original scalar configuration.
    pub fn original(params: ScoreParams) -> Self {
        BswEngine {
            params,
            kind: EngineKind::Scalar,
            backend: Backend::Portable,
            sort_by_length: false,
            force_16bit: false,
        }
    }

    /// Resolve a user-facing [`SimdChoice`] to an engine.
    pub fn for_choice(params: ScoreParams, choice: SimdChoice) -> Self {
        match choice {
            SimdChoice::Scalar => Self::original(params),
            SimdChoice::Portable => Self::portable(params),
            SimdChoice::Auto | SimdChoice::Native => Self::optimized(params),
        }
    }

    /// Extend every job; results are in job order and bit-identical to
    /// the scalar kernel regardless of configuration.
    pub fn extend_all(&self, jobs: &[ExtendJob]) -> Vec<ExtendResult> {
        let refs: Vec<JobRef<'_>> = jobs.iter().map(JobRef::from).collect();
        let mut out = vec![ExtendResult::default(); jobs.len()];
        self.extend_jobs(&refs, &mut out, &mut NoPhase);
        out
    }

    /// As [`BswEngine::extend_all`] with Table 8 phase timing.
    pub fn extend_all_profiled(
        &self,
        jobs: &[ExtendJob],
        breakdown: &mut PhaseBreakdown,
    ) -> Vec<ExtendResult> {
        let refs: Vec<JobRef<'_>> = jobs.iter().map(JobRef::from).collect();
        let mut out = vec![ExtendResult::default(); jobs.len()];
        self.extend_jobs(&refs, &mut out, breakdown);
        out
    }

    /// As [`BswEngine::extend_jobs`] over owned jobs (compatibility
    /// shim; batching layers should prefer [`JobRef`]s).
    pub fn extend_into<PH: PhaseSink>(
        &self,
        jobs: &[ExtendJob],
        out: &mut [ExtendResult],
        ph: &mut PH,
    ) {
        let refs: Vec<JobRef<'_>> = jobs.iter().map(JobRef::from).collect();
        self.extend_jobs(&refs, out, ph);
    }

    /// Core dispatch over borrowed jobs — no sequence buffer is ever
    /// cloned on this path.
    pub fn extend_jobs<PH: PhaseSink>(
        &self,
        jobs: &[JobRef<'_>],
        out: &mut [ExtendResult],
        ph: &mut PH,
    ) {
        assert_eq!(jobs.len(), out.len());
        match self.kind {
            EngineKind::Scalar => {
                let mut buf = Vec::new();
                for (&job, slot) in jobs.iter().zip(out.iter_mut()) {
                    *slot = extend_scalar_job(&self.params, job, &mut buf, &mut NoPhase);
                }
            }
            EngineKind::Vector { width } => {
                assert!(
                    width == 16 || width == 32 || width == 64,
                    "vector width must be 16, 32 or 64 lanes"
                );
                self.extend_vector(jobs, out, width, ph);
            }
        }
    }

    fn extend_vector<PH: PhaseSink>(
        &self,
        jobs: &[JobRef<'_>],
        out: &mut [ExtendResult],
        width: usize,
        ph: &mut PH,
    ) {
        let msc = self.params.max_score();
        ph.begin(Phase::Preproc);
        // classify into precision groups; degenerate jobs go scalar
        let mut idx8: Vec<u32> = Vec::new();
        let mut idx16: Vec<u32> = Vec::new();
        let mut idx_scalar: Vec<u32> = Vec::new();
        for (k, job) in jobs.iter().enumerate() {
            let ql = job.query.len() as i32;
            if job.query.is_empty() || job.target.is_empty() {
                idx_scalar.push(k as u32);
            } else if !self.force_16bit && job.h0 + ql * msc <= MAX_SCORE_8 {
                idx8.push(k as u32);
            } else if job.h0 + ql * msc <= MAX_SCORE_16 {
                idx16.push(k as u32);
            } else {
                idx_scalar.push(k as u32);
            }
        }
        ph.end(Phase::Preproc);

        // degenerate/overflow jobs run scalar and — as before this
        // engine grew backends — stay out of the phase/cell accounting,
        // which tracks the vector kernels only (Tables 7/8)
        let mut buf = Vec::new();
        for &k in &idx_scalar {
            out[k as usize] =
                extend_scalar_job(&self.params, jobs[k as usize], &mut buf, &mut NoPhase);
        }

        self.run_group(jobs, out, &idx8, width, true, ph);
        self.run_group(jobs, out, &idx16, width / 2, false, ph);
    }

    fn run_group<PH: PhaseSink>(
        &self,
        jobs: &[JobRef<'_>],
        out: &mut [ExtendResult],
        group: &[u32],
        lanes: usize,
        eight_bit: bool,
        ph: &mut PH,
    ) {
        if group.is_empty() {
            return;
        }
        ph.begin(Phase::Preproc);
        let ordered: Vec<u32> = if self.sort_by_length {
            let sub: Vec<JobRef<'_>> = group.iter().map(|&k| jobs[k as usize]).collect();
            sort_jobs_by_length(&sub)
                .into_iter()
                .map(|r| group[r as usize])
                .collect()
        } else {
            group.to_vec()
        };
        ph.end(Phase::Preproc);

        let mut chunk_jobs: Vec<JobRef<'_>> = Vec::with_capacity(lanes);
        let mut chunk_out = vec![ExtendResult::default(); lanes];
        for chunk in ordered.chunks(lanes) {
            chunk_jobs.clear();
            chunk_jobs.extend(chunk.iter().map(|&k| jobs[k as usize]));
            let co = &mut chunk_out[..chunk.len()];
            if eight_bit {
                self.run_chunk_u8(lanes, &chunk_jobs, co, ph);
            } else {
                self.run_chunk_i16(lanes, &chunk_jobs, co, ph);
            }
            for (&k, res) in chunk.iter().zip(co.iter()) {
                out[k as usize] = *res;
            }
        }
    }

    /// One ≤`lanes`-job chunk through the 8-bit kernel: a native
    /// backend when this engine's backend matches the width, the
    /// portable emulation otherwise.
    fn run_chunk_u8<PH: PhaseSink>(
        &self,
        lanes: usize,
        chunk: &[JobRef<'_>],
        co: &mut [ExtendResult],
        ph: &mut PH,
    ) {
        match (self.backend, lanes) {
            #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
            (Backend::Avx2, 32) => {
                extend_chunk_u8_v::<mem2_simd::x86::U8x32Avx, _>(&self.params, chunk, co, ph)
            }
            #[cfg(all(target_arch = "x86_64", target_feature = "sse4.1"))]
            (Backend::Sse41, 16) => {
                extend_chunk_u8_v::<mem2_simd::x86::U8x16Sse41, _>(&self.params, chunk, co, ph)
            }
            #[cfg(target_arch = "x86_64")]
            (Backend::Sse2, 16) => {
                extend_chunk_u8_v::<mem2_simd::x86::U8x16Sse2, _>(&self.params, chunk, co, ph)
            }
            #[cfg(target_arch = "aarch64")]
            (Backend::Neon, 16) => {
                extend_chunk_u8_v::<mem2_simd::neon::U8x16Neon, _>(&self.params, chunk, co, ph)
            }
            (_, 16) => extend_chunk_u8::<16, _>(&self.params, chunk, co, ph),
            (_, 32) => extend_chunk_u8::<32, _>(&self.params, chunk, co, ph),
            (_, 64) => extend_chunk_u8::<64, _>(&self.params, chunk, co, ph),
            _ => unreachable!("validated widths"),
        }
    }

    /// One ≤`lanes`-job chunk through the 16-bit kernel (half the 8-bit
    /// lane count).
    fn run_chunk_i16<PH: PhaseSink>(
        &self,
        lanes: usize,
        chunk: &[JobRef<'_>],
        co: &mut [ExtendResult],
        ph: &mut PH,
    ) {
        match (self.backend, lanes) {
            #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
            (Backend::Avx2, 16) => {
                extend_chunk_i16_v::<mem2_simd::x86::I16x16Avx, _>(&self.params, chunk, co, ph)
            }
            #[cfg(all(target_arch = "x86_64", target_feature = "sse4.1"))]
            (Backend::Sse41, 8) => {
                extend_chunk_i16_v::<mem2_simd::x86::I16x8Sse41, _>(&self.params, chunk, co, ph)
            }
            #[cfg(target_arch = "x86_64")]
            (Backend::Sse2, 8) => {
                extend_chunk_i16_v::<mem2_simd::x86::I16x8Sse2, _>(&self.params, chunk, co, ph)
            }
            #[cfg(target_arch = "aarch64")]
            (Backend::Neon, 8) => {
                extend_chunk_i16_v::<mem2_simd::neon::I16x8Neon, _>(&self.params, chunk, co, ph)
            }
            (_, 8) => extend_chunk_i16::<8, _>(&self.params, chunk, co, ph),
            (_, 16) => extend_chunk_i16::<16, _>(&self.params, chunk, co, ph),
            (_, 32) => extend_chunk_i16::<32, _>(&self.params, chunk, co, ph),
            _ => unreachable!("validated widths"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::extend_scalar;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mixed_jobs(n: usize, seed: u64) -> Vec<ExtendJob> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                if k % 17 == 0 {
                    // degenerate
                    return ExtendJob::new(vec![], vec![0, 1], 5, 10);
                }
                let big = rng.random_bool(0.3);
                let maxlen = if big { 400 } else { 100 };
                let qlen = rng.random_range(1..maxlen);
                let tlen = rng.random_range(1..maxlen + 15);
                let query: Vec<u8> = (0..qlen).map(|_| rng.random_range(0..4u8)).collect();
                let mut target: Vec<u8> = query
                    .iter()
                    .map(|&c| {
                        if rng.random_bool(0.1) {
                            rng.random_range(0..4u8)
                        } else {
                            c
                        }
                    })
                    .collect();
                target.resize(tlen, 2);
                let h0 = if big {
                    rng.random_range(200..500)
                } else {
                    rng.random_range(1..60)
                };
                ExtendJob::new(query, target, h0, rng.random_range(1..101))
            })
            .collect()
    }

    #[test]
    fn all_configurations_match_scalar() {
        let params = ScoreParams::default();
        let jobs = mixed_jobs(300, 99);
        let scalar: Vec<ExtendResult> = jobs.iter().map(|j| extend_scalar(&params, j)).collect();
        for width in [16usize, 32, 64] {
            for sort in [false, true] {
                for force16 in [false, true] {
                    let eng = BswEngine {
                        params,
                        kind: EngineKind::Vector { width },
                        backend: Backend::Portable,
                        sort_by_length: sort,
                        force_16bit: force16,
                    };
                    assert_eq!(
                        eng.extend_all(&jobs),
                        scalar,
                        "width={width} sort={sort} force16={force16}"
                    );
                }
            }
        }
        let eng = BswEngine::original(params);
        assert_eq!(eng.extend_all(&jobs), scalar);
    }

    #[test]
    fn every_backend_engine_matches_scalar() {
        let params = ScoreParams::default();
        let jobs = mixed_jobs(350, 100);
        let scalar: Vec<ExtendResult> = jobs.iter().map(|j| extend_scalar(&params, j)).collect();
        // every choice (auto resolves to the detected native backend)
        for choice in [
            SimdChoice::Auto,
            SimdChoice::Scalar,
            SimdChoice::Portable,
            SimdChoice::Native,
        ] {
            let eng = BswEngine::for_choice(params, choice);
            assert_eq!(eng.extend_all(&jobs), scalar, "choice={choice}");
        }
        // every backend compiled into this binary, pinned explicitly
        let mut backends = vec![Backend::Portable];
        #[cfg(target_arch = "x86_64")]
        backends.push(Backend::Sse2);
        #[cfg(all(target_arch = "x86_64", target_feature = "sse4.1"))]
        backends.push(Backend::Sse41);
        #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
        backends.push(Backend::Avx2);
        #[cfg(target_arch = "aarch64")]
        backends.push(Backend::Neon);
        for backend in backends {
            let eng = BswEngine::with_backend(params, backend);
            assert_eq!(eng.extend_all(&jobs), scalar, "backend={backend:?}");
            let mut forced = eng;
            forced.force_16bit = true;
            assert_eq!(
                forced.extend_all(&jobs),
                scalar,
                "backend={backend:?} force16"
            );
        }
    }

    #[test]
    fn mismatched_backend_width_falls_back_to_portable() {
        // a native backend with a foreign width must still be correct
        // (it silently runs the portable kernel at that width)
        let params = ScoreParams::default();
        let jobs = mixed_jobs(80, 101);
        let scalar: Vec<ExtendResult> = jobs.iter().map(|j| extend_scalar(&params, j)).collect();
        let eng = BswEngine {
            params,
            kind: EngineKind::Vector { width: 64 },
            backend: mem2_simd::Backend::native(),
            sort_by_length: true,
            force_16bit: false,
        };
        assert_eq!(eng.extend_all(&jobs), scalar);
    }

    #[test]
    fn profiled_run_matches_and_reports_phases() {
        let params = ScoreParams::default();
        let jobs = mixed_jobs(500, 7);
        let eng = BswEngine::optimized(params);
        let mut bd = PhaseBreakdown::default();
        let got = eng.extend_all_profiled(&jobs, &mut bd);
        assert_eq!(got, eng.extend_all(&jobs));
        let pct = bd.percentages();
        let sum: f64 = pct.iter().sum();
        assert!(
            (sum - 100.0).abs() < 1e-6,
            "percentages sum to 100, got {sum}"
        );
        assert!(pct[Phase::Cells as usize] > 0.0);
    }

    #[test]
    fn band_override_via_jobref_matches_owned_jobs() {
        // the no-clone band-doubling path: JobRef::with_band must equal
        // cloning the job and editing w
        let params = ScoreParams::default();
        let jobs = mixed_jobs(60, 8);
        let eng = BswEngine::optimized(params);
        let widened_owned: Vec<ExtendJob> = jobs
            .iter()
            .map(|j| {
                let mut c = j.clone();
                c.w *= 2;
                c
            })
            .collect();
        let want = eng.extend_all(&widened_owned);
        let refs: Vec<JobRef<'_>> = jobs.iter().map(|j| JobRef::with_band(j, j.w * 2)).collect();
        let mut got = vec![ExtendResult::default(); refs.len()];
        eng.extend_jobs(&refs, &mut got, &mut NoPhase);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_batch_is_fine() {
        let eng = BswEngine::optimized(ScoreParams::default());
        assert!(eng.extend_all(&[]).is_empty());
    }

    #[test]
    fn simd_choice_parses() {
        assert_eq!(SimdChoice::parse("auto"), Some(SimdChoice::Auto));
        assert_eq!(SimdChoice::parse("scalar"), Some(SimdChoice::Scalar));
        assert_eq!(SimdChoice::parse("portable"), Some(SimdChoice::Portable));
        assert_eq!(SimdChoice::parse("native"), Some(SimdChoice::Native));
        assert_eq!(SimdChoice::parse("avx512"), None);
        assert_eq!(SimdChoice::default(), SimdChoice::Auto);
    }
}
