//! Batch dispatch: precision classes, optional length sorting, chunking
//! into SIMD lanes, result scatter, and Table 8 phase timing.

use std::time::{Duration, Instant};

use crate::scalar::extend_scalar_into;
use crate::simd16::{extend_chunk_i16, MAX_SCORE_16};
use crate::simd8::{extend_chunk_u8, MAX_SCORE_8};
use crate::sort::sort_jobs_by_length;
use crate::types::{ExtendJob, ExtendResult, ScoreParams};

/// BSW execution phases (paper Table 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Sorting, AoS→SoA conversion, buffer initialization.
    Preproc,
    /// Applying the band constraint at the top of each row.
    BandAdjustI,
    /// The vectorized cell-computation loop.
    Cells,
    /// Zero-trim scans, Z-drop and bookkeeping after each row.
    BandAdjustII,
}

/// Phase-timing callbacks; [`NoPhase`] compiles to nothing.
pub trait PhaseSink {
    /// Enter a phase.
    fn begin(&mut self, p: Phase);
    /// Leave a phase.
    fn end(&mut self, p: Phase);
    /// One DP row completed: `lanes` sequence pairs were live and
    /// `cells` matrix cells were computed for them in total (for the
    /// vector kernels, `cells` covers the whole union band — the
    /// "wasteful cells" of §5.3 are included). Default: ignored.
    #[inline(always)]
    fn on_row(&mut self, lanes: u64, cells: u64) {
        let _ = (lanes, cells);
    }
}

/// Zero-cost sink for production runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoPhase;

impl PhaseSink for NoPhase {
    #[inline(always)]
    fn begin(&mut self, _p: Phase) {}
    #[inline(always)]
    fn end(&mut self, _p: Phase) {}
}

/// Row/cell statistics collector (Table 7's instruction-count proxy).
#[derive(Clone, Copy, Debug, Default)]
pub struct CellStats {
    /// DP rows processed (vector kernels: union rows).
    pub rows: u64,
    /// Lane-rows processed (sum of live lanes over rows).
    pub lane_rows: u64,
    /// Cells computed (vector kernels: union-band cells across lanes,
    /// including wasted ones).
    pub cells: u64,
}

impl PhaseSink for CellStats {
    #[inline(always)]
    fn begin(&mut self, _p: Phase) {}
    #[inline(always)]
    fn end(&mut self, _p: Phase) {}
    #[inline(always)]
    fn on_row(&mut self, lanes: u64, cells: u64) {
        self.rows += 1;
        self.lane_rows += lanes;
        self.cells += cells;
    }
}

/// Accumulated per-phase wall time.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseBreakdown {
    /// Total time per phase, indexed by `Phase as usize`.
    pub totals: [Duration; 4],
    started: Option<(Phase, Instant)>,
}

impl PhaseBreakdown {
    /// Percentage share of each phase.
    pub fn percentages(&self) -> [f64; 4] {
        let sum: f64 = self.totals.iter().map(|d| d.as_secs_f64()).sum();
        if sum == 0.0 {
            return [0.0; 4];
        }
        let mut out = [0.0; 4];
        for (o, d) in out.iter_mut().zip(&self.totals) {
            *o = 100.0 * d.as_secs_f64() / sum;
        }
        out
    }
}

impl PhaseSink for PhaseBreakdown {
    fn begin(&mut self, p: Phase) {
        self.started = Some((p, Instant::now()));
    }
    fn end(&mut self, p: Phase) {
        if let Some((started_p, t)) = self.started.take() {
            debug_assert_eq!(started_p, p);
            self.totals[p as usize] += t.elapsed();
        }
    }
}

/// Which kernel executes the batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The original scalar kernel for every job.
    Scalar,
    /// Inter-task SIMD with the given number of 8-bit lanes
    /// (64 = AVX-512-like, 32 = AVX2-like, 16 = SSE-like);
    /// 16-bit jobs use half as many lanes.
    Vector {
        /// 8-bit lane count; must be 16, 32 or 64.
        width: usize,
    },
}

/// Batch BSW engine (paper §5): precision selection per job, optional
/// length sorting, chunked SIMD execution, original-order results.
#[derive(Clone, Debug)]
pub struct BswEngine {
    /// Scoring parameters.
    pub params: ScoreParams,
    /// Kernel selection.
    pub kind: EngineKind,
    /// Sort jobs by length before filling lanes (§5.3.1).
    pub sort_by_length: bool,
    /// Send 8-bit-eligible jobs to the 16-bit kernel anyway (Table 6's
    /// 16-bit rows).
    pub force_16bit: bool,
}

impl BswEngine {
    /// AVX-512-like vector engine with sorting — the paper's best config.
    pub fn optimized(params: ScoreParams) -> Self {
        BswEngine {
            params,
            kind: EngineKind::Vector { width: 64 },
            sort_by_length: true,
            force_16bit: false,
        }
    }

    /// The original scalar configuration.
    pub fn original(params: ScoreParams) -> Self {
        BswEngine {
            params,
            kind: EngineKind::Scalar,
            sort_by_length: false,
            force_16bit: false,
        }
    }

    /// Extend every job; results are in job order and bit-identical to
    /// the scalar kernel regardless of configuration.
    pub fn extend_all(&self, jobs: &[ExtendJob]) -> Vec<ExtendResult> {
        let mut out = vec![ExtendResult::default(); jobs.len()];
        self.extend_into(jobs, &mut out, &mut NoPhase);
        out
    }

    /// As [`BswEngine::extend_all`] with Table 8 phase timing.
    pub fn extend_all_profiled(
        &self,
        jobs: &[ExtendJob],
        breakdown: &mut PhaseBreakdown,
    ) -> Vec<ExtendResult> {
        let mut out = vec![ExtendResult::default(); jobs.len()];
        self.extend_into(jobs, &mut out, breakdown);
        out
    }

    /// Core dispatch.
    pub fn extend_into<PH: PhaseSink>(
        &self,
        jobs: &[ExtendJob],
        out: &mut [ExtendResult],
        ph: &mut PH,
    ) {
        assert_eq!(jobs.len(), out.len());
        match self.kind {
            EngineKind::Scalar => {
                let mut buf = Vec::new();
                for (job, slot) in jobs.iter().zip(out.iter_mut()) {
                    *slot = extend_scalar_into(&self.params, job, &mut buf);
                }
            }
            EngineKind::Vector { width } => {
                assert!(
                    width == 16 || width == 32 || width == 64,
                    "vector width must be 16, 32 or 64 lanes"
                );
                self.extend_vector(jobs, out, width, ph);
            }
        }
    }

    fn extend_vector<PH: PhaseSink>(
        &self,
        jobs: &[ExtendJob],
        out: &mut [ExtendResult],
        width: usize,
        ph: &mut PH,
    ) {
        let msc = self.params.max_score();
        ph.begin(Phase::Preproc);
        // classify into precision groups; degenerate jobs go scalar
        let mut idx8: Vec<u32> = Vec::new();
        let mut idx16: Vec<u32> = Vec::new();
        let mut idx_scalar: Vec<u32> = Vec::new();
        for (k, job) in jobs.iter().enumerate() {
            let ql = job.query.len() as i32;
            if job.query.is_empty() || job.target.is_empty() {
                idx_scalar.push(k as u32);
            } else if !self.force_16bit && job.h0 + ql * msc <= MAX_SCORE_8 {
                idx8.push(k as u32);
            } else if job.h0 + ql * msc <= MAX_SCORE_16 {
                idx16.push(k as u32);
            } else {
                idx_scalar.push(k as u32);
            }
        }
        ph.end(Phase::Preproc);

        let mut buf = Vec::new();
        for &k in &idx_scalar {
            out[k as usize] = extend_scalar_into(&self.params, &jobs[k as usize], &mut buf);
        }

        self.run_group(jobs, out, &idx8, width, true, ph);
        self.run_group(jobs, out, &idx16, width / 2, false, ph);
    }

    fn run_group<PH: PhaseSink>(
        &self,
        jobs: &[ExtendJob],
        out: &mut [ExtendResult],
        group: &[u32],
        lanes: usize,
        eight_bit: bool,
        ph: &mut PH,
    ) {
        if group.is_empty() {
            return;
        }
        ph.begin(Phase::Preproc);
        let ordered: Vec<u32> = if self.sort_by_length {
            let sub: Vec<ExtendJob> = group.iter().map(|&k| jobs[k as usize].clone()).collect();
            sort_jobs_by_length(&sub)
                .into_iter()
                .map(|r| group[r as usize])
                .collect()
        } else {
            group.to_vec()
        };
        ph.end(Phase::Preproc);

        let mut chunk_jobs: Vec<ExtendJob> = Vec::with_capacity(lanes);
        let mut chunk_out = vec![ExtendResult::default(); lanes];
        for chunk in ordered.chunks(lanes) {
            chunk_jobs.clear();
            chunk_jobs.extend(chunk.iter().map(|&k| jobs[k as usize].clone()));
            let co = &mut chunk_out[..chunk.len()];
            if eight_bit {
                match lanes {
                    16 => extend_chunk_u8::<16, _>(&self.params, &chunk_jobs, co, ph),
                    32 => extend_chunk_u8::<32, _>(&self.params, &chunk_jobs, co, ph),
                    64 => extend_chunk_u8::<64, _>(&self.params, &chunk_jobs, co, ph),
                    _ => unreachable!("validated widths"),
                }
            } else {
                match lanes {
                    8 => extend_chunk_i16::<8, _>(&self.params, &chunk_jobs, co, ph),
                    16 => extend_chunk_i16::<16, _>(&self.params, &chunk_jobs, co, ph),
                    32 => extend_chunk_i16::<32, _>(&self.params, &chunk_jobs, co, ph),
                    _ => unreachable!("validated widths"),
                }
            }
            for (&k, res) in chunk.iter().zip(co.iter()) {
                out[k as usize] = *res;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::extend_scalar;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mixed_jobs(n: usize, seed: u64) -> Vec<ExtendJob> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                if k % 17 == 0 {
                    // degenerate
                    return ExtendJob::new(vec![], vec![0, 1], 5, 10);
                }
                let big = rng.random_bool(0.3);
                let maxlen = if big { 400 } else { 100 };
                let qlen = rng.random_range(1..maxlen);
                let tlen = rng.random_range(1..maxlen + 15);
                let query: Vec<u8> = (0..qlen).map(|_| rng.random_range(0..4u8)).collect();
                let mut target: Vec<u8> = query
                    .iter()
                    .map(|&c| {
                        if rng.random_bool(0.1) {
                            rng.random_range(0..4u8)
                        } else {
                            c
                        }
                    })
                    .collect();
                target.resize(tlen, 2);
                let h0 = if big {
                    rng.random_range(200..500)
                } else {
                    rng.random_range(1..60)
                };
                ExtendJob::new(query, target, h0, rng.random_range(1..101))
            })
            .collect()
    }

    #[test]
    fn all_configurations_match_scalar() {
        let params = ScoreParams::default();
        let jobs = mixed_jobs(300, 99);
        let scalar: Vec<ExtendResult> = jobs.iter().map(|j| extend_scalar(&params, j)).collect();
        for width in [16usize, 32, 64] {
            for sort in [false, true] {
                for force16 in [false, true] {
                    let eng = BswEngine {
                        params,
                        kind: EngineKind::Vector { width },
                        sort_by_length: sort,
                        force_16bit: force16,
                    };
                    assert_eq!(
                        eng.extend_all(&jobs),
                        scalar,
                        "width={width} sort={sort} force16={force16}"
                    );
                }
            }
        }
        let eng = BswEngine::original(params);
        assert_eq!(eng.extend_all(&jobs), scalar);
    }

    #[test]
    fn profiled_run_matches_and_reports_phases() {
        let params = ScoreParams::default();
        let jobs = mixed_jobs(500, 7);
        let eng = BswEngine::optimized(params);
        let mut bd = PhaseBreakdown::default();
        let got = eng.extend_all_profiled(&jobs, &mut bd);
        assert_eq!(got, eng.extend_all(&jobs));
        let pct = bd.percentages();
        let sum: f64 = pct.iter().sum();
        assert!(
            (sum - 100.0).abs() < 1e-6,
            "percentages sum to 100, got {sum}"
        );
        assert!(pct[Phase::Cells as usize] > 0.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let eng = BswEngine::optimized(ScoreParams::default());
        assert!(eng.extend_all(&[]).is_empty());
    }
}
