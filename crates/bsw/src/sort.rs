//! Length sorting of extension jobs (paper §5.3.1).
//!
//! "We use radix sort to sort the tasks by their respective sequence
//! lengths, and then group together tasks with the same or close sequence
//! lengths to ensure uniformity of tasks filling vector lanes."
//!
//! Key = `tlen << 16 | qlen`, LSD radix over 11-bit digits (3 passes).

use crate::types::JobRef;

/// Return the permutation that orders `jobs` by (tlen, qlen) ascending.
/// `perm[rank] = original index`. Stable, linear time.
pub fn sort_jobs_by_length(jobs: &[JobRef<'_>]) -> Vec<u32> {
    let keys: Vec<u32> = jobs
        .iter()
        .map(|j| {
            debug_assert!(j.target.len() < 1 << 16 && j.query.len() < 1 << 16);
            ((j.target.len() as u32) << 16) | j.query.len() as u32
        })
        .collect();
    radix_argsort(&keys)
}

/// LSD radix argsort over u32 keys with 11-bit digits.
fn radix_argsort(keys: &[u32]) -> Vec<u32> {
    const BITS: u32 = 11;
    const BUCKETS: usize = 1 << BITS;
    const MASK: u32 = (BUCKETS - 1) as u32;
    let n = keys.len();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut tmp: Vec<u32> = vec![0; n];
    let mut counts = vec![0u32; BUCKETS];
    for pass in 0..3 {
        let shift = pass * BITS;
        counts.fill(0);
        for &i in &perm {
            counts[((keys[i as usize] >> shift) & MASK) as usize] += 1;
        }
        let mut sum = 0u32;
        for c in counts.iter_mut() {
            let v = *c;
            *c = sum;
            sum += v;
        }
        for &i in &perm {
            let d = ((keys[i as usize] >> shift) & MASK) as usize;
            tmp[counts[d] as usize] = i;
            counts[d] += 1;
        }
        std::mem::swap(&mut perm, &mut tmp);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ExtendJob;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn job(q: usize, t: usize) -> ExtendJob {
        ExtendJob::new(vec![0; q], vec![0; t], 1, 10)
    }

    #[test]
    fn orders_by_target_then_query() {
        let jobs = [job(5, 9), job(2, 3), job(9, 3), job(1, 3)];
        let refs: Vec<JobRef<'_>> = jobs.iter().map(JobRef::from).collect();
        let perm = sort_jobs_by_length(&refs);
        let ordered: Vec<(usize, usize)> = perm
            .iter()
            .map(|&i| (jobs[i as usize].target.len(), jobs[i as usize].query.len()))
            .collect();
        assert_eq!(ordered, vec![(3, 1), (3, 2), (3, 9), (9, 5)]);
    }

    #[test]
    fn radix_matches_std_sort_on_random_keys() {
        let mut rng = StdRng::seed_from_u64(11);
        let keys: Vec<u32> = (0..5000).map(|_| rng.random::<u32>()).collect();
        let perm = radix_argsort(&keys);
        let mut expect: Vec<u32> = (0..keys.len() as u32).collect();
        expect.sort_by_key(|&i| (keys[i as usize], i)); // stable
        assert_eq!(perm, expect);
    }

    #[test]
    fn empty_and_single() {
        assert!(sort_jobs_by_length(&[]).is_empty());
        let single = job(1, 1);
        assert_eq!(sort_jobs_by_length(&[JobRef::from(&single)]), vec![0]);
    }
}
