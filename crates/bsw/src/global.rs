//! Banded global alignment with traceback (bwa's `ksw_global2` role):
//! used by SAM formatting to turn the chosen alignment region into a
//! CIGAR string.

use crate::types::ScoreParams;

/// One CIGAR operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CigarOp {
    /// Alignment match or mismatch, `len` bases on both sequences.
    Match(u32),
    /// Insertion to the reference (consumes query).
    Ins(u32),
    /// Deletion from the reference (consumes target).
    Del(u32),
    /// Soft clip (consumes query; added by the SAM layer, not here).
    SoftClip(u32),
}

impl CigarOp {
    /// Operation length.
    pub fn len(&self) -> u32 {
        match *self {
            CigarOp::Match(n) | CigarOp::Ins(n) | CigarOp::Del(n) | CigarOp::SoftClip(n) => n,
        }
    }

    /// True for zero-length ops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// SAM op character.
    pub fn ch(&self) -> char {
        match *self {
            CigarOp::Match(_) => 'M',
            CigarOp::Ins(_) => 'I',
            CigarOp::Del(_) => 'D',
            CigarOp::SoftClip(_) => 'S',
        }
    }
}

const NEG_INF: i32 = i32::MIN / 4;

/// Global alignment of `query` against `target` within band `w` using
/// affine gaps; returns `(score, cigar)`. The band is widened to at least
/// the length difference so the bottom-right corner stays reachable.
pub fn global_align(
    params: &ScoreParams,
    query: &[u8],
    target: &[u8],
    w: i32,
) -> (i32, Vec<CigarOp>) {
    let n = query.len();
    let m = target.len();
    if n == 0 {
        return (
            del_score(params, m),
            if m > 0 {
                vec![CigarOp::Del(m as u32)]
            } else {
                vec![]
            },
        );
    }
    if m == 0 {
        return (ins_score(params, n), vec![CigarOp::Ins(n as u32)]);
    }
    let w = w.max((n as i32 - m as i32).abs() + 1).max(1);

    // H/E/F over (m+1) x (n+1); direction bits for traceback:
    //   bits 0-1: H came from (0 = diagonal, 1 = E/del, 2 = F/ins)
    //   bit 2: E extended (came from E rather than H)
    //   bit 3: F extended
    let stride = n + 1;
    let mut h = vec![NEG_INF; stride];
    let mut e = vec![NEG_INF; stride];
    let mut dir = vec![0u8; (m + 1) * stride];

    h[0] = 0;
    for j in 1..=n {
        if j as i32 > w {
            break;
        }
        h[j] = -(params.o_ins + params.e_ins * j as i32);
        dir[j] = 2 | 8;
    }
    let mut h_prev_diag;
    for i in 1..=m {
        let lo = ((i as i32 - w).max(1)) as usize;
        let hi = ((i as i32 + w).min(n as i32)) as usize;
        let row = i * stride;
        // value entering column lo-1 of this row
        h_prev_diag = h[lo - 1]; // H(i-1, lo-1)
        let mut h_left = if lo == 1 {
            // first column of the matrix within band
            -(params.o_del + params.e_del * i as i32)
        } else {
            NEG_INF
        };
        if lo == 1 {
            dir[row] = 1 | 4;
            h[0] = h_left; // store H(i, 0) for the next row's diagonal
        }
        let mut f = NEG_INF;
        let tbase = target[i - 1];
        for j in lo..=hi {
            // E(i, j): gap in query (deletion), from row above
            let h_up = h[j];
            let e_open = h_up - (params.o_del + params.e_del);
            let e_ext = e[j] - params.e_del;
            let (e_new, e_from_e) = if e_ext > e_open {
                (e_ext, true)
            } else {
                (e_open, false)
            };
            // F(i, j): gap in target (insertion), from the left
            let f_open = h_left - (params.o_ins + params.e_ins);
            let f_ext = f - params.e_ins;
            let (f_new, f_from_f) = if f_ext > f_open {
                (f_ext, true)
            } else {
                (f_open, false)
            };
            // H(i, j)
            let diag = h_prev_diag + params.score(tbase, query[j - 1]);
            let mut best = diag;
            let mut from = 0u8;
            if e_new > best {
                best = e_new;
                from = 1;
            }
            if f_new > best {
                best = f_new;
                from = 2;
            }
            dir[row + j] = from | if e_from_e { 4 } else { 0 } | if f_from_f { 8 } else { 0 };
            h_prev_diag = h_up;
            h[j] = best;
            e[j] = e_new;
            f = f_new;
            h_left = best;
        }
        // seal band edges for the next row
        if lo > 1 {
            h[lo - 1] = NEG_INF;
            e[lo - 1] = NEG_INF;
        }
        if hi < n {
            h[hi + 1] = NEG_INF;
            e[hi + 1] = NEG_INF;
        }
    }
    let score = h[n];

    // traceback
    let mut ops: Vec<CigarOp> = Vec::new();
    let (mut i, mut j) = (m, n);
    let mut state = 0u8; // 0 = in H, 1 = in E, 2 = in F
    while i > 0 || j > 0 {
        let d = dir[i * stride + j];
        match state {
            0 => match d & 3 {
                0 => {
                    push_op(&mut ops, CigarOp::Match(1));
                    i -= 1;
                    j -= 1;
                }
                1 => state = 1,
                _ => state = 2,
            },
            1 => {
                // deletion: consumes target
                push_op(&mut ops, CigarOp::Del(1));
                state = if d & 4 != 0 { 1 } else { 0 };
                i -= 1;
            }
            _ => {
                // insertion: consumes query
                push_op(&mut ops, CigarOp::Ins(1));
                state = if d & 8 != 0 { 2 } else { 0 };
                j -= 1;
            }
        }
    }
    ops.reverse();
    (score, ops)
}

fn del_score(params: &ScoreParams, m: usize) -> i32 {
    if m == 0 {
        0
    } else {
        -(params.o_del + params.e_del * m as i32)
    }
}

fn ins_score(params: &ScoreParams, n: usize) -> i32 {
    -(params.o_ins + params.e_ins * n as i32)
}

fn push_op(ops: &mut Vec<CigarOp>, op: CigarOp) {
    match (ops.last_mut(), op) {
        (Some(CigarOp::Match(n)), CigarOp::Match(k)) => *n += k,
        (Some(CigarOp::Ins(n)), CigarOp::Ins(k)) => *n += k,
        (Some(CigarOp::Del(n)), CigarOp::Del(k)) => *n += k,
        _ => ops.push(op),
    }
}

/// Render a CIGAR as its SAM string.
pub fn cigar_string(ops: &[CigarOp]) -> String {
    let mut s = String::new();
    for op in ops {
        s.push_str(&op.len().to_string());
        s.push(op.ch());
    }
    if s.is_empty() {
        s.push('*');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ScoreParams {
        ScoreParams::default()
    }

    fn lens(ops: &[CigarOp]) -> (u32, u32) {
        let mut q = 0;
        let mut t = 0;
        for op in ops {
            match op {
                CigarOp::Match(n) => {
                    q += n;
                    t += n;
                }
                CigarOp::Ins(n) | CigarOp::SoftClip(n) => q += n,
                CigarOp::Del(n) => t += n,
            }
        }
        (q, t)
    }

    #[test]
    fn identity_alignment_is_all_match() {
        let s = [0u8, 1, 2, 3, 1, 2];
        let (score, cig) = global_align(&p(), &s, &s, 10);
        assert_eq!(score, 6);
        assert_eq!(cig, vec![CigarOp::Match(6)]);
        assert_eq!(cigar_string(&cig), "6M");
    }

    #[test]
    fn substitution_stays_match_op() {
        let q = [0u8, 1, 2, 3];
        let t = [0u8, 1, 0, 3];
        let (score, cig) = global_align(&p(), &q, &t, 10);
        assert_eq!(score, 3 - 4);
        assert_eq!(cig, vec![CigarOp::Match(4)]);
    }

    #[test]
    fn deletion_appears_in_cigar() {
        let q = [0u8, 1, 2, 3];
        let t = [0u8, 1, 3, 3, 2, 3]; // two extra target bases
        let (score, cig) = global_align(&p(), &q, &t, 10);
        let (ql, tl) = lens(&cig);
        assert_eq!(ql, 4);
        assert_eq!(tl, 6);
        assert!(
            cig.iter().any(|op| matches!(op, CigarOp::Del(2))),
            "{cig:?}"
        );
        #[allow(clippy::identity_op)] // spelled as gap_open + n_ext * e_del
        let expected = 4 - (6 + 2 * 1); // 4 matches - gap open+2 ext
        assert_eq!(score, expected);
    }

    #[test]
    fn insertion_appears_in_cigar() {
        let q = [0u8, 1, 3, 3, 2, 3];
        let t = [0u8, 1, 2, 3];
        let (score, cig) = global_align(&p(), &q, &t, 10);
        let (ql, tl) = lens(&cig);
        assert_eq!(ql, 6);
        assert_eq!(tl, 4);
        assert!(
            cig.iter().any(|op| matches!(op, CigarOp::Ins(2))),
            "{cig:?}"
        );
        #[allow(clippy::identity_op)]
        let expected = 4 - (6 + 2 * 1);
        assert_eq!(score, expected);
    }

    #[test]
    fn empty_sequences() {
        let (s, cig) = global_align(&p(), &[], &[0, 1], 5);
        assert_eq!(cig, vec![CigarOp::Del(2)]);
        assert_eq!(s, -(6 + 2));
        let (s, cig) = global_align(&p(), &[0, 1], &[], 5);
        assert_eq!(cig, vec![CigarOp::Ins(2)]);
        assert_eq!(s, -(6 + 2));
        let (s, cig) = global_align(&p(), &[], &[], 5);
        assert!(cig.is_empty());
        assert_eq!(s, 0);
        assert_eq!(cigar_string(&cig), "*");
    }

    #[test]
    fn cigar_always_consumes_full_lengths() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let n = rng.random_range(1..60);
            let m = rng.random_range(1..60);
            let q: Vec<u8> = (0..n).map(|_| rng.random_range(0..4u8)).collect();
            let t: Vec<u8> = (0..m).map(|_| rng.random_range(0..4u8)).collect();
            let (_, cig) = global_align(&p(), &q, &t, rng.random_range(1..20));
            let (ql, tl) = lens(&cig);
            assert_eq!(ql as usize, n);
            assert_eq!(tl as usize, m);
        }
    }

    #[test]
    fn matches_unbanded_score_when_band_is_wide() {
        // reference scorer: full unbanded affine-gap DP
        fn full_dp(params: &ScoreParams, q: &[u8], t: &[u8]) -> i32 {
            let n = q.len();
            let m = t.len();
            let mut h = vec![vec![NEG_INF; n + 1]; m + 1];
            let mut e = vec![vec![NEG_INF; n + 1]; m + 1];
            let mut f = vec![vec![NEG_INF; n + 1]; m + 1];
            h[0][0] = 0;
            for j in 1..=n {
                h[0][j] = -(params.o_ins + params.e_ins * j as i32);
            }
            for i in 1..=m {
                h[i][0] = -(params.o_del + params.e_del * i as i32);
            }
            for i in 1..=m {
                for j in 1..=n {
                    e[i][j] =
                        (e[i - 1][j] - params.e_del).max(h[i - 1][j] - params.o_del - params.e_del);
                    f[i][j] =
                        (f[i][j - 1] - params.e_ins).max(h[i][j - 1] - params.o_ins - params.e_ins);
                    let diag = h[i - 1][j - 1] + params.score(t[i - 1], q[j - 1]);
                    h[i][j] = diag.max(e[i][j]).max(f[i][j]);
                }
            }
            h[m][n]
        }
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let n = rng.random_range(1..40);
            let m = rng.random_range(1..40);
            let q: Vec<u8> = (0..n).map(|_| rng.random_range(0..4u8)).collect();
            let t: Vec<u8> = (0..m).map(|_| rng.random_range(0..4u8)).collect();
            let (banded, _) = global_align(&p(), &q, &t, 100);
            assert_eq!(banded, full_dp(&p(), &q, &t), "q={q:?} t={t:?}");
        }
    }
}
