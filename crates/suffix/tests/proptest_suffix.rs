//! Property tests: SA-IS vs naive construction, and BWT invariants.

use proptest::prelude::*;

use mem2_suffix::{build_bwt, naive_suffix_array, suffix_array};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sais_matches_naive(text in prop::collection::vec(0u8..4, 0..600)) {
        prop_assert_eq!(suffix_array(&text), naive_suffix_array(&text));
    }

    #[test]
    fn sais_on_low_entropy_strings(
        unit in prop::collection::vec(0u8..4, 1..6),
        reps in 1usize..120,
    ) {
        // repetitive strings are SA-IS's hardest case (deep recursion)
        let text: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        prop_assert_eq!(suffix_array(&text), naive_suffix_array(&text));
    }

    #[test]
    fn bwt_counts_and_inversion(text in prop::collection::vec(0u8..4, 1..300)) {
        let (bwt, sa) = build_bwt(&text);
        // counts are exact
        let mut counts = [0i64; 4];
        for &c in &text {
            counts[c as usize] += 1;
        }
        prop_assert_eq!(bwt.counts, counts);
        prop_assert_eq!(bwt.c_before[4], text.len() as i64 + 1);
        // SA row with value 0 is the sentinel row
        prop_assert_eq!(sa[bwt.sentinel_row] as usize, 0);
        // inverse BWT reproduces the text
        let occ = |c: u8, upto: usize| -> i64 {
            (0..upto).filter(|&r| bwt.get(r) == Some(c)).count() as i64
        };
        let mut row = 0usize;
        let mut rebuilt = Vec::new();
        for _ in 0..text.len() {
            let c = bwt.get(row).expect("non-sentinel row");
            rebuilt.push(c);
            row = (bwt.c_before[c as usize] + occ(c, row)) as usize;
        }
        rebuilt.reverse();
        prop_assert_eq!(rebuilt, text);
    }

    #[test]
    fn suffix_array_orders_suffixes(text in prop::collection::vec(0u8..4, 0..400)) {
        let sa = suffix_array(&text);
        prop_assert_eq!(sa.len(), text.len() + 1);
        prop_assert_eq!(sa[0] as usize, text.len());
        for w in sa.windows(2) {
            prop_assert!(text[w[0] as usize..] < text[w[1] as usize..]);
        }
    }
}
