//! Suffix array and BWT construction substrate.
//!
//! bwa builds its index with `libdivsufsort`/IS; bwa-mem2 uses `saisxx`.
//! We implement SA-IS (Nong, Zhang, Chan 2009) from scratch: linear time,
//! and fast enough to index the multi-megabase synthetic genomes used by
//! the benchmark harness in well under a second per megabase.
//!
//! Conventions (shared with `mem2-fmindex`):
//! * input is a code sequence over {0,1,2,3} (A,C,G,T);
//! * the suffix array covers the text **plus a virtual sentinel** `$`
//!   smaller than every base, so `sa.len() == text.len() + 1` and
//!   `sa[0] == text.len()` (the empty suffix);
//! * the BWT is returned with the sentinel row *removed* and its position
//!   recorded (`sentinel_row`), exactly the layout bwa's occurrence
//!   counting assumes (`k -= (k >= bwt->primary)`).
//!
//! Key types: [`suffix_array`]/[`bwt_from_sa`] construction entry points
//! and the width-dispatched [`SaVec`]/[`IndexWidth`] position storage.
//! Introduced in PR 1; generalized over 32/64-bit positions in PR 6.

pub mod bwt;
pub mod naive;
pub mod pos;
pub mod sais;

pub use bwt::{build_bwt, bwt_from_sa, bwt_from_savec, Bwt};
pub use naive::naive_suffix_array;
pub use pos::{IndexWidth, SaPos, SaVec};
pub use sais::{suffix_array, suffix_array_as, suffix_array_u64, suffix_array_width};
