//! SA-IS: linear-time suffix array by induced sorting.

const EMPTY: u32 = u32::MAX;

/// Build the suffix array (with virtual sentinel) of a base-code text.
///
/// Every element of `text` must be `< 4`. The result has length
/// `text.len() + 1`; entry 0 is always `text.len()` (the sentinel suffix).
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    assert!(
        text.len() < (u32::MAX - 2) as usize,
        "text too long for u32 suffix array"
    );
    debug_assert!(text.iter().all(|&c| c < 4), "text must be 2-bit base codes");
    // Shift codes by +1 and append an explicit sentinel 0, then run SA-IS
    // over alphabet size 5.
    let mut s: Vec<u32> = Vec::with_capacity(text.len() + 1);
    s.extend(text.iter().map(|&c| c as u32 + 1));
    s.push(0);
    sais(&s, 5)
}

/// Core SA-IS over a u32 string whose last character is a unique smallest
/// sentinel (value 0 appearing exactly once, at the end).
fn sais(s: &[u32], sigma: usize) -> Vec<u32> {
    let n = s.len();
    debug_assert!(n >= 1);
    if n == 1 {
        return vec![0];
    }
    if n == 2 {
        // sentinel at the end is smallest
        return vec![1, 0];
    }

    // --- type classification: stype[i] == true iff suffix i is S-type ---
    let mut stype = vec![false; n];
    stype[n - 1] = true;
    for i in (0..n - 1).rev() {
        stype[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && stype[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && stype[i] && !stype[i - 1];

    // --- bucket sizes ---
    let mut bkt = vec![0u32; sigma];
    for &c in s {
        bkt[c as usize] += 1;
    }
    let bucket_starts = |bkt: &[u32]| {
        let mut out = vec![0u32; bkt.len()];
        let mut sum = 0u32;
        for (o, &b) in out.iter_mut().zip(bkt) {
            *o = sum;
            sum += b;
        }
        out
    };
    let bucket_ends = |bkt: &[u32]| {
        let mut out = vec![0u32; bkt.len()];
        let mut sum = 0u32;
        for (o, &b) in out.iter_mut().zip(bkt) {
            sum += b;
            *o = sum;
        }
        out
    };

    let mut sa = vec![EMPTY; n];

    // --- stage A: approximately sort LMS suffixes by induced sorting ---
    {
        let mut ends = bucket_ends(&bkt);
        for i in (1..n).rev() {
            if is_lms(i) {
                let c = s[i] as usize;
                ends[c] -= 1;
                sa[ends[c] as usize] = i as u32;
            }
        }
        induce_l(s, &stype, &mut sa, &mut bucket_starts(&bkt));
        induce_s(s, &stype, &mut sa, &mut bucket_ends(&bkt));
    }

    // --- collect LMS suffixes in their induced (substring-sorted) order ---
    let mut lms_sorted: Vec<u32> = Vec::new();
    for &p in sa.iter() {
        if p != EMPTY && is_lms(p as usize) {
            lms_sorted.push(p);
        }
    }

    // --- name LMS substrings ---
    let mut names = vec![EMPTY; n / 2 + 1];
    let mut name_count: u32 = 0;
    let mut prev: Option<usize> = None;
    for &p in &lms_sorted {
        let p = p as usize;
        if let Some(q) = prev {
            if !lms_substring_eq(s, &stype, q, p, &is_lms) {
                name_count += 1;
            }
        }
        names[p / 2] = name_count;
        prev = Some(p);
    }
    let distinct = name_count + 1;

    // --- reduced problem ---
    let lms_in_order: Vec<u32> = (1..n).filter(|&i| is_lms(i)).map(|i| i as u32).collect();
    let reduced: Vec<u32> = lms_in_order
        .iter()
        .map(|&p| names[p as usize / 2])
        .collect();

    let sa1: Vec<u32> = if distinct as usize == reduced.len() {
        // all LMS substrings distinct: order follows directly
        let mut sa1 = vec![0u32; reduced.len()];
        for (i, &r) in reduced.iter().enumerate() {
            sa1[r as usize] = i as u32;
        }
        sa1
    } else {
        sais(&reduced, distinct as usize)
    };

    // --- stage B: final induced sort with exactly-sorted LMS order ---
    sa.fill(EMPTY);
    {
        let mut ends = bucket_ends(&bkt);
        for &r in sa1.iter().rev() {
            let p = lms_in_order[r as usize];
            let c = s[p as usize] as usize;
            ends[c] -= 1;
            sa[ends[c] as usize] = p;
        }
        induce_l(s, &stype, &mut sa, &mut bucket_starts(&bkt));
        induce_s(s, &stype, &mut sa, &mut bucket_ends(&bkt));
    }
    sa
}

/// Left-to-right pass placing L-type suffixes at bucket fronts.
#[inline]
fn induce_l(s: &[u32], stype: &[bool], sa: &mut [u32], starts: &mut [u32]) {
    for i in 0..sa.len() {
        let p = sa[i];
        if p != EMPTY && p > 0 {
            let j = (p - 1) as usize;
            if !stype[j] {
                let c = s[j] as usize;
                sa[starts[c] as usize] = j as u32;
                starts[c] += 1;
            }
        }
    }
}

/// Right-to-left pass placing S-type suffixes at bucket backs.
#[inline]
fn induce_s(s: &[u32], stype: &[bool], sa: &mut [u32], ends: &mut [u32]) {
    for i in (0..sa.len()).rev() {
        let p = sa[i];
        if p != EMPTY && p > 0 {
            let j = (p - 1) as usize;
            if stype[j] {
                let c = s[j] as usize;
                ends[c] -= 1;
                sa[ends[c] as usize] = j as u32;
            }
        }
    }
}

/// Compare the LMS substrings starting at `a` and `b` for equality.
fn lms_substring_eq(
    s: &[u32],
    stype: &[bool],
    a: usize,
    b: usize,
    is_lms: &impl Fn(usize) -> bool,
) -> bool {
    if a == b {
        return true;
    }
    if s[a] != s[b] || stype[a] != stype[b] {
        return false;
    }
    let (mut i, mut j) = (a + 1, b + 1);
    loop {
        let ai = is_lms(i);
        let bj = is_lms(j);
        if ai && bj {
            return true;
        }
        if ai != bj || s[i] != s[j] || stype[i] != stype[j] {
            return false;
        }
        i += 1;
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_suffix_array;

    fn enc(s: &[u8]) -> Vec<u8> {
        s.iter()
            .map(|&b| match b {
                b'A' => 0,
                b'C' => 1,
                b'G' => 2,
                b'T' => 3,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn empty_text() {
        assert_eq!(suffix_array(&[]), vec![0]);
    }

    #[test]
    fn single_base() {
        assert_eq!(suffix_array(&enc(b"A")), vec![1, 0]);
    }

    #[test]
    fn paper_figure1_example() {
        // R = ATACGAC from Figure 1 of the paper (we drop the explicit $).
        // Suffixes sorted: $ (7), AC$ (5), ACGAC$ (2), ATACGAC$ (0),
        // C$ (6), CGAC$ (3), GAC$ (4), TACGAC$ (1)
        let sa = suffix_array(&enc(b"ATACGAC"));
        assert_eq!(sa, vec![7, 5, 2, 0, 6, 3, 4, 1]);
    }

    #[test]
    fn repetitive_strings_match_naive() {
        for txt in [
            &b"AAAAAAAA"[..],
            b"ACACACAC",
            b"GGGGA",
            b"TGCATGCATGCA",
            b"ACGTACGTACGTACGT",
            b"T",
            b"AT",
            b"TTAA",
        ] {
            let codes = enc(txt);
            assert_eq!(
                suffix_array(&codes),
                naive_suffix_array(&codes),
                "mismatch for {}",
                std::str::from_utf8(txt).unwrap()
            );
        }
    }

    #[test]
    fn random_strings_match_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for len in [3usize, 17, 64, 255, 1000, 4097] {
            let codes: Vec<u8> = (0..len).map(|_| rng.random_range(0..4u8)).collect();
            assert_eq!(
                suffix_array(&codes),
                naive_suffix_array(&codes),
                "len {len}"
            );
        }
    }

    #[test]
    fn sa_is_a_permutation() {
        let codes = enc(b"GATTACAGATTACACATTAG");
        let sa = suffix_array(&codes);
        let mut seen = vec![false; sa.len()];
        for &p in &sa {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
        assert_eq!(sa[0] as usize, codes.len());
    }
}
