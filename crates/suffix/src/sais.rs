//! SA-IS: linear-time suffix array by induced sorting, generic over the
//! position width ([`SaPos`]): the `u32` instantiation is the fast path
//! for references whose doubled text fits 4-byte entries; the `u64`
//! instantiation serves human-genome-scale references past the old
//! `u32::MAX`-position ceiling.

use crate::pos::{IndexWidth, SaPos, SaVec};

/// Build the suffix array (with virtual sentinel) of a base-code text
/// with `u32` entries — the small-reference fast path.
///
/// Every element of `text` must be `< 4`. The result has length
/// `text.len() + 1`; entry 0 is always `text.len()` (the sentinel suffix).
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    suffix_array_as::<u32>(text)
}

/// [`suffix_array`] with 8-byte entries, for texts past the `u32` limit
/// (and for exercising the wide layout on small fixtures).
pub fn suffix_array_u64(text: &[u8]) -> Vec<u64> {
    suffix_array_as::<u64>(text)
}

/// Width-dispatched [`suffix_array`]: one entry layout chosen by the
/// caller (index-time decision), one code path underneath.
pub fn suffix_array_width(text: &[u8], width: IndexWidth) -> SaVec {
    match width {
        IndexWidth::W32 => SaVec::U32(suffix_array_as::<u32>(text)),
        IndexWidth::W64 => SaVec::U64(suffix_array_as::<u64>(text)),
    }
}

/// Generic core entry point: build the suffix array with `P` entries.
pub fn suffix_array_as<P: SaPos>(text: &[u8]) -> Vec<P> {
    assert!(
        text.len() < P::WIDTH.max_positions(),
        "text too long for u{} suffix array",
        P::WIDTH
    );
    debug_assert!(text.iter().all(|&c| c < 4), "text must be 2-bit base codes");
    // Shift codes by +1 and append an explicit sentinel 0, then run SA-IS
    // over alphabet size 5.
    let mut s: Vec<P> = Vec::with_capacity(text.len() + 1);
    s.extend(text.iter().map(|&c| P::from_usize(c as usize + 1)));
    s.push(P::from_usize(0));
    sais(&s, 5)
}

/// Core SA-IS over a string of `P` symbols whose last character is a
/// unique smallest sentinel (value 0 appearing exactly once, at the end).
/// The recursion's reduced strings reuse the same width: LMS names are
/// bounded by `n/2`, so whatever width holds the positions holds the
/// names.
fn sais<P: SaPos>(s: &[P], sigma: usize) -> Vec<P> {
    let n = s.len();
    debug_assert!(n >= 1);
    if n == 1 {
        return vec![P::from_usize(0)];
    }
    if n == 2 {
        // sentinel at the end is smallest
        return vec![P::from_usize(1), P::from_usize(0)];
    }

    // --- type classification: stype[i] == true iff suffix i is S-type ---
    let mut stype = vec![false; n];
    stype[n - 1] = true;
    for i in (0..n - 1).rev() {
        stype[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && stype[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && stype[i] && !stype[i - 1];

    // --- bucket sizes ---
    let mut bkt = vec![P::from_usize(0); sigma];
    for &c in s {
        bkt[c.usize()] = P::from_usize(bkt[c.usize()].usize() + 1);
    }
    let bucket_starts = |bkt: &[P]| {
        let mut out = vec![P::from_usize(0); bkt.len()];
        let mut sum = 0usize;
        for (o, &b) in out.iter_mut().zip(bkt) {
            *o = P::from_usize(sum);
            sum += b.usize();
        }
        out
    };
    let bucket_ends = |bkt: &[P]| {
        let mut out = vec![P::from_usize(0); bkt.len()];
        let mut sum = 0usize;
        for (o, &b) in out.iter_mut().zip(bkt) {
            sum += b.usize();
            *o = P::from_usize(sum);
        }
        out
    };

    let mut sa = vec![P::EMPTY; n];

    // --- stage A: approximately sort LMS suffixes by induced sorting ---
    {
        let mut ends = bucket_ends(&bkt);
        for i in (1..n).rev() {
            if is_lms(i) {
                let c = s[i].usize();
                ends[c] = P::from_usize(ends[c].usize() - 1);
                sa[ends[c].usize()] = P::from_usize(i);
            }
        }
        induce_l(s, &stype, &mut sa, &mut bucket_starts(&bkt));
        induce_s(s, &stype, &mut sa, &mut bucket_ends(&bkt));
    }

    // --- collect LMS suffixes in their induced (substring-sorted) order ---
    let mut lms_sorted: Vec<P> = Vec::new();
    for &p in sa.iter() {
        if p != P::EMPTY && is_lms(p.usize()) {
            lms_sorted.push(p);
        }
    }

    // --- name LMS substrings ---
    let mut names = vec![P::EMPTY; n / 2 + 1];
    let mut name_count: usize = 0;
    let mut prev: Option<usize> = None;
    for &p in &lms_sorted {
        let p = p.usize();
        if let Some(q) = prev {
            if !lms_substring_eq(s, &stype, q, p, &is_lms) {
                name_count += 1;
            }
        }
        names[p / 2] = P::from_usize(name_count);
        prev = Some(p);
    }
    let distinct = name_count + 1;

    // --- reduced problem ---
    let lms_in_order: Vec<P> = (1..n).filter(|&i| is_lms(i)).map(P::from_usize).collect();
    let reduced: Vec<P> = lms_in_order.iter().map(|&p| names[p.usize() / 2]).collect();

    let sa1: Vec<P> = if distinct == reduced.len() {
        // all LMS substrings distinct: order follows directly
        let mut sa1 = vec![P::from_usize(0); reduced.len()];
        for (i, &r) in reduced.iter().enumerate() {
            sa1[r.usize()] = P::from_usize(i);
        }
        sa1
    } else {
        sais(&reduced, distinct)
    };

    // --- stage B: final induced sort with exactly-sorted LMS order ---
    sa.fill(P::EMPTY);
    {
        let mut ends = bucket_ends(&bkt);
        for &r in sa1.iter().rev() {
            let p = lms_in_order[r.usize()];
            let c = s[p.usize()].usize();
            ends[c] = P::from_usize(ends[c].usize() - 1);
            sa[ends[c].usize()] = p;
        }
        induce_l(s, &stype, &mut sa, &mut bucket_starts(&bkt));
        induce_s(s, &stype, &mut sa, &mut bucket_ends(&bkt));
    }
    sa
}

/// Left-to-right pass placing L-type suffixes at bucket fronts.
#[inline]
fn induce_l<P: SaPos>(s: &[P], stype: &[bool], sa: &mut [P], starts: &mut [P]) {
    for i in 0..sa.len() {
        let p = sa[i];
        if p != P::EMPTY && p.usize() > 0 {
            let j = p.usize() - 1;
            if !stype[j] {
                let c = s[j].usize();
                sa[starts[c].usize()] = P::from_usize(j);
                starts[c] = P::from_usize(starts[c].usize() + 1);
            }
        }
    }
}

/// Right-to-left pass placing S-type suffixes at bucket backs.
#[inline]
fn induce_s<P: SaPos>(s: &[P], stype: &[bool], sa: &mut [P], ends: &mut [P]) {
    for i in (0..sa.len()).rev() {
        let p = sa[i];
        if p != P::EMPTY && p.usize() > 0 {
            let j = p.usize() - 1;
            if stype[j] {
                let c = s[j].usize();
                ends[c] = P::from_usize(ends[c].usize() - 1);
                sa[ends[c].usize()] = P::from_usize(j);
            }
        }
    }
}

/// Compare the LMS substrings starting at `a` and `b` for equality.
fn lms_substring_eq<P: SaPos>(
    s: &[P],
    stype: &[bool],
    a: usize,
    b: usize,
    is_lms: &impl Fn(usize) -> bool,
) -> bool {
    if a == b {
        return true;
    }
    if s[a] != s[b] || stype[a] != stype[b] {
        return false;
    }
    let (mut i, mut j) = (a + 1, b + 1);
    loop {
        let ai = is_lms(i);
        let bj = is_lms(j);
        if ai && bj {
            return true;
        }
        if ai != bj || s[i] != s[j] || stype[i] != stype[j] {
            return false;
        }
        i += 1;
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_suffix_array;

    fn enc(s: &[u8]) -> Vec<u8> {
        s.iter()
            .map(|&b| match b {
                b'A' => 0,
                b'C' => 1,
                b'G' => 2,
                b'T' => 3,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn empty_text() {
        assert_eq!(suffix_array(&[]), vec![0]);
        assert_eq!(suffix_array_u64(&[]), vec![0]);
    }

    #[test]
    fn single_base() {
        assert_eq!(suffix_array(&enc(b"A")), vec![1, 0]);
        assert_eq!(suffix_array_u64(&enc(b"A")), vec![1, 0]);
    }

    #[test]
    fn paper_figure1_example() {
        // R = ATACGAC from Figure 1 of the paper (we drop the explicit $).
        // Suffixes sorted: $ (7), AC$ (5), ACGAC$ (2), ATACGAC$ (0),
        // C$ (6), CGAC$ (3), GAC$ (4), TACGAC$ (1)
        let sa = suffix_array(&enc(b"ATACGAC"));
        assert_eq!(sa, vec![7, 5, 2, 0, 6, 3, 4, 1]);
    }

    #[test]
    fn repetitive_strings_match_naive() {
        for txt in [
            &b"AAAAAAAA"[..],
            b"ACACACAC",
            b"GGGGA",
            b"TGCATGCATGCA",
            b"ACGTACGTACGTACGT",
            b"T",
            b"AT",
            b"TTAA",
        ] {
            let codes = enc(txt);
            assert_eq!(
                suffix_array(&codes),
                naive_suffix_array(&codes),
                "mismatch for {}",
                std::str::from_utf8(txt).unwrap()
            );
        }
    }

    #[test]
    fn random_strings_match_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for len in [3usize, 17, 64, 255, 1000, 4097] {
            let codes: Vec<u8> = (0..len).map(|_| rng.random_range(0..4u8)).collect();
            assert_eq!(
                suffix_array(&codes),
                naive_suffix_array(&codes),
                "len {len}"
            );
        }
    }

    #[test]
    fn wide_entries_agree_with_narrow_everywhere() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for len in [0usize, 1, 2, 3, 64, 513, 2048] {
            let codes: Vec<u8> = (0..len).map(|_| rng.random_range(0..4u8)).collect();
            let narrow = suffix_array(&codes);
            let wide = suffix_array_u64(&codes);
            assert_eq!(narrow.len(), wide.len(), "len {len}");
            assert!(
                narrow.iter().zip(&wide).all(|(&a, &b)| a as u64 == b),
                "width changed the suffix order at len {len}"
            );
            // the width-dispatched front door returns the same arrays
            assert_eq!(
                suffix_array_width(&codes, IndexWidth::W32),
                SaVec::U32(narrow)
            );
            assert_eq!(
                suffix_array_width(&codes, IndexWidth::W64),
                SaVec::U64(wide)
            );
        }
    }

    #[test]
    fn sa_is_a_permutation() {
        let codes = enc(b"GATTACAGATTACACATTAG");
        let sa = suffix_array(&codes);
        let mut seen = vec![false; sa.len()];
        for &p in &sa {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
        assert_eq!(sa[0] as usize, codes.len());
    }
}
