//! Reference O(n² log n) suffix-array builder used to validate SA-IS.

/// Build the suffix array (with virtual sentinel) by direct sorting.
///
/// Slice comparison in Rust treats a proper prefix as smaller, which is
/// exactly the virtual-sentinel ordering, so no explicit sentinel needed.
pub fn naive_suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    let mut sa: Vec<u32> = (0..=n as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banana_like() {
        // codes: 1,0,3,0,3,0  ("CATATA"-ish)
        let text = [1u8, 0, 3, 0, 3, 0];
        let sa = naive_suffix_array(&text);
        assert_eq!(sa[0] as usize, text.len()); // empty suffix first
                                                // verify sortedness
        for w in sa.windows(2) {
            assert!(text[w[0] as usize..] <= text[w[1] as usize..]);
        }
    }
}
