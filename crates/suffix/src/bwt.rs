//! BWT construction in the sentinel-removed layout bwa uses.

use crate::pos::{SaPos, SaVec};
use crate::sais::suffix_array;

/// Burrows-Wheeler transform of a base-code text, sentinel row removed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bwt {
    /// BWT characters for all rows except the sentinel row; length = text len.
    pub data: Vec<u8>,
    /// Conceptual row index whose BWT character is the sentinel; this is
    /// also the row of the full-text suffix (`SA[row] == 0`). bwa calls
    /// this `primary`.
    pub sentinel_row: usize,
    /// Occurrences of each base in the text.
    pub counts: [i64; 4],
    /// Cumulative counts: `c_before[c]` = 1 + Σ_{c'<c} counts[c'] — the
    /// first conceptual BWT row whose suffix starts with `c` (the leading
    /// 1 accounts for the sentinel suffix at row 0). Index 4 holds the
    /// total row count.
    pub c_before: [i64; 5],
}

impl Bwt {
    /// Number of conceptual rows (text length + 1, including sentinel row).
    pub fn rows(&self) -> usize {
        self.data.len() + 1
    }

    /// BWT character of conceptual row `r`, or `None` for the sentinel row.
    pub fn get(&self, r: usize) -> Option<u8> {
        use std::cmp::Ordering;
        match r.cmp(&self.sentinel_row) {
            Ordering::Less => Some(self.data[r]),
            Ordering::Equal => None,
            Ordering::Greater => Some(self.data[r - 1]),
        }
    }
}

/// Build the BWT of `text` from its suffix array (computed internally).
pub fn build_bwt(text: &[u8]) -> (Bwt, Vec<u32>) {
    let sa = suffix_array(text);
    let bwt = bwt_from_sa(text, &sa);
    (bwt, sa)
}

/// Build the BWT of `text` given its `(n+1)`-row suffix array, in either
/// entry width (generic over [`SaPos`]; `&[u32]` callers are unchanged).
pub fn bwt_from_sa<P: SaPos>(text: &[u8], sa: &[P]) -> Bwt {
    assert_eq!(sa.len(), text.len() + 1);
    let mut data = Vec::with_capacity(text.len());
    let mut sentinel_row = usize::MAX;
    let mut counts = [0i64; 4];
    for (r, &p) in sa.iter().enumerate() {
        let p = p.usize();
        if p == 0 {
            sentinel_row = r;
        } else {
            let c = text[p - 1];
            data.push(c);
            counts[c as usize] += 1;
        }
    }
    assert!(
        sentinel_row != usize::MAX,
        "suffix array lacks row with SA=0"
    );
    let mut c_before = [0i64; 5];
    c_before[0] = 1;
    for c in 0..4 {
        c_before[c + 1] = c_before[c] + counts[c];
    }
    Bwt {
        data,
        sentinel_row,
        counts,
        c_before,
    }
}

/// [`bwt_from_sa`] over a width-dispatched suffix array.
pub fn bwt_from_savec(text: &[u8], sa: &SaVec) -> Bwt {
    match sa {
        SaVec::U32(v) => bwt_from_sa(text, v),
        SaVec::U64(v) => bwt_from_sa(text, v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(s: &[u8]) -> Vec<u8> {
        s.iter()
            .map(|&b| match b {
                b'A' => 0,
                b'C' => 1,
                b'G' => 2,
                b'T' => 3,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn figure1_reference_sequence() {
        // R = ATACGAC as in Figure 1 of the paper. Sorted rotations of R$:
        //   $ATACGAC, AC$ATACG, ACGAC$AT, ATACGAC$, C$ATACGA,
        //   CGAC$ATA, GAC$ATAC, TACGAC$A
        // so SA = [7,5,2,0,6,3,4,1], last column = C G T $ A A C A,
        // sentinel row = 3.
        let text = enc(b"ATACGAC");
        let (bwt, sa) = build_bwt(&text);
        assert_eq!(sa, vec![7, 5, 2, 0, 6, 3, 4, 1]);
        assert_eq!(bwt.sentinel_row, 3);
        assert_eq!(bwt.data, enc(b"CGTAACA")); // sentinel removed
        assert_eq!(bwt.counts, [3, 2, 1, 1]);
        assert_eq!(bwt.c_before, [1, 4, 6, 7, 8]);
        assert_eq!(bwt.rows(), 8);
    }

    #[test]
    fn get_skips_sentinel() {
        let text = enc(b"ATACGAC");
        let (bwt, _) = build_bwt(&text);
        assert_eq!(bwt.get(0), Some(1)); // C
        assert_eq!(bwt.get(1), Some(2)); // G
        assert_eq!(bwt.get(2), Some(3)); // T
        assert_eq!(bwt.get(3), None); // sentinel
        assert_eq!(bwt.get(4), Some(0)); // A
        assert_eq!(bwt.get(7), Some(0)); // A
    }

    #[test]
    fn lf_walk_reconstructs_text_backwards() {
        // Classic inverse-BWT check exercising counts + row arithmetic.
        // Row 0 is the sentinel suffix; its BWT char is the last text char,
        // and LF-stepping yields the text right-to-left.
        let text = enc(b"GATTACAGATTACA");
        let (bwt, _) = build_bwt(&text);
        let occ = |c: u8, upto: usize| -> i64 {
            // occurrences of c in conceptual rows [0, upto)
            (0..upto).filter(|&r| bwt.get(r) == Some(c)).count() as i64
        };
        let mut row = 0usize;
        let mut rebuilt = Vec::new();
        for _ in 0..text.len() {
            let c = bwt.get(row).unwrap();
            rebuilt.push(c);
            row = (bwt.c_before[c as usize] + occ(c, row)) as usize;
        }
        assert_eq!(
            row, bwt.sentinel_row,
            "walk must end at the full-text suffix row"
        );
        rebuilt.reverse();
        assert_eq!(rebuilt, text);
    }
}
