//! Position-width abstraction: suffix-array entries as `u32` or `u64`.
//!
//! The paper stores 8-byte suffix-array entries (48 GB for a human
//! genome); small references fit 4-byte entries at half the footprint.
//! Everything downstream of the suffix sort is generic over [`SaPos`] —
//! a sealed trait implemented for exactly `u32` and `u64` — or works on
//! the enum-dispatched [`SaVec`], whose layout is chosen once at index
//! time (see `flat_sa_fits` in `mem2-core`) and persists through the
//! index bundle.

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// The two supported suffix-array entry layouts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexWidth {
    /// 4-byte entries: doubled texts up to `u32::MAX` positions (~2 Gbp).
    W32,
    /// 8-byte entries: any reference a machine can hold (GRCh38 included).
    W64,
}

impl IndexWidth {
    /// Bytes per suffix-array entry.
    pub const fn bytes(self) -> usize {
        match self {
            IndexWidth::W32 => 4,
            IndexWidth::W64 => 8,
        }
    }

    /// Human-readable bit width ("32"/"64").
    pub const fn name(self) -> &'static str {
        match self {
            IndexWidth::W32 => "32",
            IndexWidth::W64 => "64",
        }
    }

    /// Inverse of [`bytes`](IndexWidth::bytes), for decoding persisted
    /// headers.
    pub const fn from_bytes(b: u8) -> Option<IndexWidth> {
        match b {
            4 => Some(IndexWidth::W32),
            8 => Some(IndexWidth::W64),
            _ => None,
        }
    }

    /// Largest text length (positions, *including* the sentinel row)
    /// this width can address.
    pub const fn max_positions(self) -> usize {
        match self {
            IndexWidth::W32 => (u32::MAX - 2) as usize,
            IndexWidth::W64 => usize::MAX - 2,
        }
    }
}

impl std::fmt::Display for IndexWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A suffix-array position: `u32` or `u64`, nothing else (sealed).
///
/// The SA-IS construction, BWT derivation and the flat/sampled lookup
/// tables are generic over this trait; the `u32` instantiation is the
/// unchanged fast path for references whose doubled text fits 4-byte
/// entries.
pub trait SaPos:
    sealed::Sealed + Copy + Ord + Eq + std::fmt::Debug + std::hash::Hash + Send + Sync + 'static
{
    /// The "unfilled" sentinel used inside induced sorting (`MAX`).
    const EMPTY: Self;
    /// Which layout this type is.
    const WIDTH: IndexWidth;

    /// Widen-from-index (must fit; positions are produced from in-range
    /// text offsets only).
    fn from_usize(v: usize) -> Self;
    /// Narrow-to-index.
    fn usize(self) -> usize;
}

impl SaPos for u32 {
    const EMPTY: u32 = u32::MAX;
    const WIDTH: IndexWidth = IndexWidth::W32;

    #[inline(always)]
    fn from_usize(v: usize) -> u32 {
        debug_assert!(v <= u32::MAX as usize);
        v as u32
    }

    #[inline(always)]
    fn usize(self) -> usize {
        self as usize
    }
}

impl SaPos for u64 {
    const EMPTY: u64 = u64::MAX;
    const WIDTH: IndexWidth = IndexWidth::W64;

    #[inline(always)]
    fn from_usize(v: usize) -> u64 {
        v as u64
    }

    #[inline(always)]
    fn usize(self) -> usize {
        self as usize
    }
}

/// An owned suffix array in either entry layout, dispatched at runtime.
///
/// This is the currency between the suffix sort, the FM-index builders
/// and the persistence layer: one allocation, width chosen at index
/// time, no copies when handing ownership down the stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SaVec {
    /// 4-byte entries.
    U32(Vec<u32>),
    /// 8-byte entries.
    U64(Vec<u64>),
}

impl From<Vec<u32>> for SaVec {
    fn from(v: Vec<u32>) -> SaVec {
        SaVec::U32(v)
    }
}

impl From<Vec<u64>> for SaVec {
    fn from(v: Vec<u64>) -> SaVec {
        SaVec::U64(v)
    }
}

impl SaVec {
    /// Entry layout of this array.
    pub fn width(&self) -> IndexWidth {
        match self {
            SaVec::U32(_) => IndexWidth::W32,
            SaVec::U64(_) => IndexWidth::W64,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            SaVec::U32(v) => v.len(),
            SaVec::U64(v) => v.len(),
        }
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry `i` as a text position.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        match self {
            SaVec::U32(v) => v[i] as usize,
            SaVec::U64(v) => v[i] as usize,
        }
    }

    /// Iterate entries as text positions.
    pub fn iter(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match self {
            SaVec::U32(v) => Box::new(v.iter().map(|&x| x as usize)),
            SaVec::U64(v) => Box::new(v.iter().map(|&x| x as usize)),
        }
    }

    /// The `u32` entries, when this is the narrow layout.
    pub fn as_u32(&self) -> Option<&[u32]> {
        match self {
            SaVec::U32(v) => Some(v),
            SaVec::U64(_) => None,
        }
    }

    /// The `u64` entries, when this is the wide layout.
    pub fn as_u64(&self) -> Option<&[u64]> {
        match self {
            SaVec::U64(v) => Some(v),
            SaVec::U32(_) => None,
        }
    }

    /// Copy into the wide layout (test/migration helper).
    pub fn to_u64(&self) -> Vec<u64> {
        match self {
            SaVec::U32(v) => v.iter().map(|&x| x as u64).collect(),
            SaVec::U64(v) => v.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_properties() {
        assert_eq!(IndexWidth::W32.bytes(), 4);
        assert_eq!(IndexWidth::W64.bytes(), 8);
        assert_eq!(IndexWidth::from_bytes(4), Some(IndexWidth::W32));
        assert_eq!(IndexWidth::from_bytes(8), Some(IndexWidth::W64));
        assert_eq!(IndexWidth::from_bytes(2), None);
        assert_eq!(IndexWidth::W32.to_string(), "32");
        assert!(IndexWidth::W64.max_positions() > IndexWidth::W32.max_positions());
    }

    #[test]
    fn savec_dispatch() {
        let narrow = SaVec::U32(vec![3, 1, 2]);
        let wide = SaVec::U64(vec![3, 1, 2]);
        assert_eq!(narrow.width(), IndexWidth::W32);
        assert_eq!(wide.width(), IndexWidth::W64);
        assert_eq!(narrow.len(), 3);
        assert!(!narrow.is_empty());
        for i in 0..3 {
            assert_eq!(narrow.get(i), wide.get(i));
        }
        assert_eq!(narrow.iter().collect::<Vec<_>>(), vec![3, 1, 2]);
        assert_eq!(wide.iter().collect::<Vec<_>>(), vec![3, 1, 2]);
        assert_eq!(narrow.as_u32(), Some(&[3u32, 1, 2][..]));
        assert!(narrow.as_u64().is_none());
        assert_eq!(wide.as_u64(), Some(&[3u64, 1, 2][..]));
        assert!(wide.as_u32().is_none());
        assert_eq!(narrow.to_u64(), vec![3u64, 1, 2]);
        assert_eq!(narrow.to_u64(), wide.to_u64());
    }
}
