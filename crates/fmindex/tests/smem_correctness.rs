//! SMEM search validated against a brute-force definition, and the
//! paper's identical-output requirement checked across occurrence-table
//! layouts and prefetch settings.

use mem2_fmindex::{
    backward_ext4, collect_intv, forward_ext4, smem1a, BiInterval, BuildOpts, FmIndex, OccTable,
    SmemAux, SmemOpts,
};
use mem2_memsim::NoopSink;
use mem2_seqio::{GenomeSpec, Reference};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Count occurrences of `pat` in `hay` (overlapping).
fn count_occurrences(hay: &[u8], pat: &[u8]) -> usize {
    if pat.is_empty() || pat.len() > hay.len() {
        return 0;
    }
    hay.windows(pat.len()).filter(|w| *w == pat).count()
}

/// The doubled text S = R . revcomp(R).
fn doubled(reference: &Reference) -> Vec<u8> {
    let l = reference.len();
    let mut s: Vec<u8> = (0..l).map(|i| reference.pac.get(i)).collect();
    for i in (0..l).rev() {
        s.push(3 - reference.pac.get(i));
    }
    s
}

/// Brute-force SMEMs of `query` in `s`: maximal exact matches (cannot be
/// extended either way) that are not contained in another maximal match.
fn brute_smems(s: &[u8], query: &[u8]) -> Vec<(usize, usize, usize)> {
    let n = query.len();
    let mut mems: Vec<(usize, usize, usize)> = Vec::new();
    for beg in 0..n {
        for end in beg + 1..=n {
            let sub = &query[beg..end];
            if sub.iter().any(|&c| c > 3) {
                continue;
            }
            let occ = count_occurrences(s, sub);
            if occ == 0 {
                continue;
            }
            let left_ext =
                beg > 0 && query[beg - 1] <= 3 && count_occurrences(s, &query[beg - 1..end]) > 0;
            let right_ext =
                end < n && query[end] <= 3 && count_occurrences(s, &query[beg..end + 1]) > 0;
            if !left_ext && !right_ext {
                mems.push((beg, end, occ));
            }
        }
    }
    // SMEM: not contained in another MEM on the query
    let smems: Vec<(usize, usize, usize)> = mems
        .iter()
        .copied()
        .filter(|&(b, e, _)| {
            !mems
                .iter()
                .any(|&(b2, e2, _)| (b2 < b && e <= e2) || (b2 <= b && e < e2))
        })
        .collect();
    smems
}

/// Run pass-1 seeding (all SMEMs, min length 1) with the given table.
fn all_smems<O: OccTable>(occ: &O, query: &[u8], prefetch: bool) -> Vec<BiInterval> {
    let mut out = Vec::new();
    let mut mem1 = Vec::new();
    let mut aux = SmemAux::default();
    let mut sink = NoopSink;
    let mut x = 0usize;
    while x < query.len() {
        if query[x] < 4 {
            x = smem1a(
                occ,
                query,
                x,
                1,
                0,
                &mut mem1,
                &mut aux.swap,
                prefetch,
                &mut sink,
            );
            out.extend(mem1.iter().copied());
        } else {
            x += 1;
        }
    }
    out.sort_by_key(|p| (p.info, p.k));
    out.dedup();
    out
}

fn random_codes(rng: &mut StdRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.random_range(0..4u8)).collect()
}

#[test]
fn smems_match_brute_force_on_random_texts() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for trial in 0..25 {
        let l = rng.random_range(40..200usize);
        let codes = random_codes(&mut rng, l);
        let reference = Reference::from_codes("c", &codes);
        let idx = FmIndex::build(&reference, &BuildOpts::default());
        let s = doubled(&reference);

        let qlen = rng.random_range(8..30usize);
        let query: Vec<u8> = if rng.random_bool(0.7) {
            // mostly reads drawn from the text (with occasional mutations)
            let start = rng.random_range(0..l - qlen);
            let mut q = codes[start..start + qlen].to_vec();
            for c in q.iter_mut() {
                if rng.random_bool(0.1) {
                    *c = rng.random_range(0..4u8);
                }
            }
            q
        } else {
            random_codes(&mut rng, qlen)
        };

        let expected = brute_smems(&s, &query);
        let got = all_smems(idx.opt(), &query, false);
        let got_tuples: Vec<(usize, usize, usize)> = got
            .iter()
            .map(|p| (p.start(), p.end(), p.s as usize))
            .collect();
        assert_eq!(got_tuples, expected, "trial {trial} query {query:?}");
    }
}

#[test]
fn layouts_and_prefetch_produce_identical_smems() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let genome = GenomeSpec {
        len: 20_000,
        repeat_families: 6,
        repeat_len: 200,
        repeat_copies: 5,
        ..GenomeSpec::default()
    };
    let reference = genome.generate_reference("g");
    let idx = FmIndex::build(&reference, &BuildOpts::default());
    for _ in 0..40 {
        let start = rng.random_range(0..reference.len() - 120);
        let mut query: Vec<u8> = (start..start + 120).map(|i| reference.pac.get(i)).collect();
        for c in query.iter_mut() {
            if rng.random_bool(0.02) {
                *c = rng.random_range(0..5u8); // occasionally inject N
            }
        }
        let a = all_smems(idx.opt(), &query, false);
        let b = all_smems(idx.opt(), &query, true);
        let c = all_smems(idx.orig(), &query, false);
        assert_eq!(a, b, "prefetch changed results");
        assert_eq!(a, c, "occurrence layout changed results");
    }
}

#[test]
fn collect_intv_identical_across_layouts() {
    let genome = GenomeSpec {
        len: 30_000,
        ..GenomeSpec::default()
    };
    let reference = genome.generate_reference("g");
    let idx = FmIndex::build(&reference, &BuildOpts::default());
    let opts = SmemOpts::default();
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let mut aux = SmemAux::default();
    let mut sink = NoopSink;
    for _ in 0..30 {
        let start = rng.random_range(0..reference.len() - 151);
        let mut query: Vec<u8> = (start..start + 151).map(|i| reference.pac.get(i)).collect();
        for c in query.iter_mut() {
            if rng.random_bool(0.01) {
                *c = rng.random_range(0..4u8);
            }
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        collect_intv(idx.opt(), &opts, &query, &mut a, &mut aux, true, &mut sink);
        collect_intv(
            idx.orig(),
            &opts,
            &query,
            &mut b,
            &mut aux,
            false,
            &mut sink,
        );
        assert_eq!(a, b);
        // every reported interval has sane occurrence counts and spans
        for p in &a {
            assert!(p.s >= 1);
            assert!(p.len() >= opts.min_seed_len as usize);
            assert!(p.end() <= query.len());
        }
    }
}

#[test]
fn extension_agrees_with_substring_counting() {
    let mut rng = StdRng::seed_from_u64(0xAB);
    let codes = random_codes(&mut rng, 150);
    let reference = Reference::from_codes("c", &codes);
    let idx = FmIndex::build(&reference, &BuildOpts::default());
    let s = doubled(&reference);
    let occ = idx.opt();
    let mut sink = NoopSink;
    for _ in 0..200 {
        let blen = rng.random_range(1..8usize);
        let pat = random_codes(&mut rng, blen);
        let iv = match mem2_fmindex::ext::backward_search(occ, &pat, &mut sink) {
            Some(iv) => iv,
            None => {
                assert_eq!(count_occurrences(&s, &pat), 0);
                continue;
            }
        };
        assert_eq!(
            iv.s as usize,
            count_occurrences(&s, &pat),
            "pattern {pat:?}"
        );
        // backward extension counts
        let back = backward_ext4(occ, &iv, &mut sink);
        for b in 0..4u8 {
            let mut ext = vec![b];
            ext.extend_from_slice(&pat);
            assert_eq!(
                back[b as usize].s as usize,
                count_occurrences(&s, &ext),
                "b{b} + {pat:?}"
            );
        }
        // forward extension counts
        let fwd = forward_ext4(occ, &iv, &mut sink);
        for b in 0..4u8 {
            let mut ext = pat.clone();
            ext.push(b);
            assert_eq!(
                fwd[b as usize].s as usize,
                count_occurrences(&s, &ext),
                "{pat:?} + {b}"
            );
        }
        // the l interval is the interval of the reverse complement
        let rc: Vec<u8> = pat.iter().rev().map(|&c| 3 - c).collect();
        if let Some(rc_iv) = mem2_fmindex::ext::backward_search(occ, &rc, &mut sink) {
            assert_eq!(iv.l, rc_iv.k, "l must point at revcomp interval");
            assert_eq!(iv.s, rc_iv.s);
        } else {
            panic!("revcomp must occur in symmetric text");
        }
    }
}

#[test]
fn sa_lookup_locates_every_smem_occurrence() {
    let mut rng = StdRng::seed_from_u64(0x51);
    let codes = random_codes(&mut rng, 400);
    let reference = Reference::from_codes("c", &codes);
    let idx = FmIndex::build(&reference, &BuildOpts::default());
    let s = doubled(&reference);
    let mut sink = NoopSink;
    for _ in 0..30 {
        let start = rng.random_range(0..codes.len() - 25);
        let query = codes[start..start + 25].to_vec();
        for iv in all_smems(idx.opt(), &query, false) {
            let positions = idx.locate(&iv, usize::MAX, &mut sink);
            assert_eq!(positions.len(), iv.s as usize);
            let sub = &query[iv.start()..iv.end()];
            for p in positions {
                assert_eq!(&s[p as usize..p as usize + sub.len()], sub);
            }
        }
    }
}
