//! Property tests over the FM-index: occurrence-table layout agreement,
//! search counts vs direct substring counting, SAL equivalence.

use proptest::prelude::*;

use mem2_fmindex::ext::backward_search;
use mem2_fmindex::{BuildOpts, FmIndex, OccTable};
use mem2_memsim::NoopSink;
use mem2_seqio::Reference;

fn count_occurrences(hay: &[u8], pat: &[u8]) -> usize {
    if pat.is_empty() || pat.len() > hay.len() {
        return 0;
    }
    hay.windows(pat.len()).filter(|w| *w == pat).count()
}

fn doubled(reference: &Reference) -> Vec<u8> {
    let l = reference.len();
    let mut s: Vec<u8> = (0..l).map(|i| reference.pac.get(i)).collect();
    for i in (0..l).rev() {
        s.push(3 - reference.pac.get(i));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn occ_layouts_agree_everywhere(text in prop::collection::vec(0u8..4, 1..500)) {
        let reference = Reference::from_codes("p", &text);
        let idx = FmIndex::build(&reference, &BuildOpts::default());
        let orig = idx.orig();
        let opt = idx.opt();
        let mut sink = NoopSink;
        let rows = 2 * text.len() as i64;
        for r in -1..=rows {
            prop_assert_eq!(orig.occ4(r, &mut sink), opt.occ4(r, &mut sink), "r={}", r);
        }
        for r in 0..=rows {
            if r != orig.meta().sentinel_row {
                prop_assert_eq!(orig.bwt_char(r), opt.bwt_char(r));
            }
        }
    }

    #[test]
    fn search_counts_match_substring_counting(
        text in prop::collection::vec(0u8..4, 4..300),
        pat in prop::collection::vec(0u8..4, 1..12),
    ) {
        let reference = Reference::from_codes("p", &text);
        let idx = FmIndex::build(&reference, &BuildOpts::default());
        let s = doubled(&reference);
        let mut sink = NoopSink;
        let expected = count_occurrences(&s, &pat);
        match backward_search(idx.opt(), &pat, &mut sink) {
            Some(iv) => {
                prop_assert_eq!(iv.s as usize, expected);
                // locate every occurrence and verify the text there
                let pos = idx.locate(&iv, usize::MAX, &mut sink);
                prop_assert_eq!(pos.len(), expected);
                for p in pos {
                    prop_assert_eq!(&s[p as usize..p as usize + pat.len()], &pat[..]);
                }
            }
            None => prop_assert_eq!(expected, 0),
        }
    }

    #[test]
    fn sal_storages_agree(text in prop::collection::vec(0u8..4, 1..400)) {
        let reference = Reference::from_codes("p", &text);
        let idx = FmIndex::build(&reference, &BuildOpts::default());
        let flat = idx.sa_flat.as_ref().expect("flat SA");
        let sampled = idx.sa_sampled.as_ref().expect("sampled SA");
        let mut sink = NoopSink;
        for r in 0..(2 * text.len() as i64 + 1) {
            let a = flat.lookup(r, &mut sink);
            let b = sampled.lookup(idx.orig(), r, &mut sink);
            let c = sampled.lookup(idx.opt(), r, &mut sink);
            prop_assert_eq!(a, b);
            prop_assert_eq!(b, c);
        }
    }

    #[test]
    fn revcomp_symmetry_of_bi_intervals(
        text in prop::collection::vec(0u8..4, 8..200),
        pat in prop::collection::vec(0u8..4, 1..8),
    ) {
        // The doubled text is revcomp-symmetric, so occ(P) == occ(revcomp(P))
        // and the bi-interval's l field is the revcomp interval's k.
        let reference = Reference::from_codes("p", &text);
        let idx = FmIndex::build(&reference, &BuildOpts::default());
        let mut sink = NoopSink;
        let rc: Vec<u8> = pat.iter().rev().map(|&c| 3 - c).collect();
        let a = backward_search(idx.opt(), &pat, &mut sink);
        let b = backward_search(idx.opt(), &rc, &mut sink);
        match (a, b) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.s, y.s);
                prop_assert_eq!(x.l, y.k);
                prop_assert_eq!(x.k, y.l);
            }
            (None, None) => {}
            (x, y) => prop_assert!(false, "asymmetric: {:?} vs {:?}", x, y),
        }
    }
}
