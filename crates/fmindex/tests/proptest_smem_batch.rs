//! Property tests pinning the tentpole invariant of the interleaved
//! seeding scheduler: for random references and random reads (including
//! ambiguous bases), the batched round-robin state machines produce the
//! **identical** interval list — same values, same order — as the
//! per-read `collect_intv` path, for every slab width and prefetch
//! setting, on both occurrence-table layouts.

use proptest::prelude::*;

use mem2_fmindex::{
    collect_intv, BiInterval, BuildOpts, FmIndex, OccTable, SmemAux, SmemOpts, SmemScheduler,
};
use mem2_memsim::NoopSink;
use mem2_seqio::Reference;

fn per_read<O: OccTable>(occ: &O, opts: &SmemOpts, reads: &[Vec<u8>]) -> Vec<Vec<BiInterval>> {
    let mut aux = SmemAux::default();
    let mut sink = NoopSink;
    reads
        .iter()
        .map(|q| {
            let mut out = Vec::new();
            collect_intv(occ, opts, q, &mut out, &mut aux, false, &mut sink);
            out
        })
        .collect()
}

fn interleaved<O: OccTable>(
    occ: &O,
    opts: &SmemOpts,
    reads: &[Vec<u8>],
    width: usize,
    prefetch: bool,
) -> Vec<Vec<BiInterval>> {
    let mut sched = SmemScheduler::new();
    let mut sink = NoopSink;
    let queries: Vec<&[u8]> = reads.iter().map(|q| q.as_slice()).collect();
    let mut outs = vec![Vec::new(); reads.len()];
    sched.seed_slab(occ, opts, &queries, width, prefetch, &mut sink, |i, out| {
        std::mem::swap(&mut outs[i], out)
    });
    outs
}

/// Read generator: substrings of the reference text with mutations and
/// occasional Ns, plus fully random sequences — the mix that exercises
/// matches, mismatch breaks, and the ambiguous-base paths.
fn read_strategy(text: Vec<u8>) -> impl Strategy<Value = Vec<Vec<u8>>> {
    let len = text.len();
    prop::collection::vec(
        (
            0usize..len,
            2usize..60,
            prop::collection::vec(0u8..50, 0..6),
            any::<bool>(),
        ),
        1..12,
    )
    .prop_map(move |specs| {
        specs
            .into_iter()
            .map(|(start, rlen, muts, random)| {
                let mut q: Vec<u8> = if random {
                    // arbitrary bases incl. N-heavy stretches
                    (0..rlen).map(|i| ((start + i * 7) % 5) as u8).collect()
                } else {
                    text.iter()
                        .cycle()
                        .skip(start)
                        .take(rlen)
                        .copied()
                        .collect()
                };
                for (k, m) in muts.iter().enumerate() {
                    let pos = (*m as usize + k * 13) % q.len();
                    q[pos] = *m % 5; // 4 = N
                }
                q
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn interleaved_seeding_is_identical_to_per_read(
        (text, reads) in prop::collection::vec(0u8..4, 30..400)
            .prop_flat_map(|t| {
                let reads = read_strategy(t.clone());
                (Just(t), reads)
            }),
        width in 1usize..20,
        prefetch in any::<bool>(),
    ) {
        let reference = Reference::from_codes("p", &text);
        let idx = FmIndex::build(&reference, &BuildOpts::default());
        let opts = SmemOpts::default();
        let expected = per_read(idx.opt(), &opts, &reads);
        let got = interleaved(idx.opt(), &opts, &reads, width, prefetch);
        prop_assert_eq!(&got, &expected, "width {} prefetch {}", width, prefetch);
        // both occurrence layouts drive the machine to the same seeds
        let on_orig = interleaved(idx.orig(), &opts, &reads, width, prefetch);
        prop_assert_eq!(&on_orig, &expected);
    }

    #[test]
    fn interleaving_is_identical_under_nondefault_seeding_opts(
        text in prop::collection::vec(0u8..4, 50..300),
        min_seed_len in 5i32..25,
        split_width in 1i64..30,
        max_mem_intv in 0i64..40,
    ) {
        let reference = Reference::from_codes("p", &text);
        let idx = FmIndex::build(&reference, &BuildOpts::optimized_only());
        let opts = SmemOpts {
            min_seed_len,
            split_width,
            max_mem_intv,
            ..SmemOpts::default()
        };
        // reads straight off the text so re-seeding actually triggers
        let reads: Vec<Vec<u8>> = (0..6)
            .map(|i| {
                let start = (i * 31) % (text.len() / 2);
                let end = (start + 40 + i * 11).min(text.len());
                text[start..end].to_vec()
            })
            .collect();
        let expected = per_read(idx.opt(), &opts, &reads);
        for width in [1usize, 3, 16] {
            let got = interleaved(idx.opt(), &opts, &reads, width, true);
            prop_assert_eq!(&got, &expected, "width {}", width);
        }
    }
}
