//! The SMEM bi-interval (bwa's `bwtintv_t`).

/// A bi-directional SA interval for a query substring `X`:
/// * `k` — first row of the SA interval of `X`;
/// * `l` — first row of the SA interval of `revcomp(X)`;
/// * `s` — interval size (number of occurrences of `X` in ref+revcomp);
/// * `info` — bwa's packed query span: `start << 32 | end` (`[start, end)`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct BiInterval {
    /// First row of the SA interval of the matched string.
    pub k: i64,
    /// First row of the SA interval of its reverse complement.
    pub l: i64,
    /// Interval size (occurrence count).
    pub s: i64,
    /// Query span, packed bwa-style: `start << 32 | end`.
    pub info: u64,
}

impl BiInterval {
    /// Query start position (inclusive).
    #[inline]
    pub fn start(&self) -> usize {
        (self.info >> 32) as usize
    }

    /// Query end position (exclusive).
    #[inline]
    pub fn end(&self) -> usize {
        (self.info & 0xFFFF_FFFF) as usize
    }

    /// Matched length on the query.
    #[inline]
    pub fn len(&self) -> usize {
        self.end().saturating_sub(self.start())
    }

    /// True when the match is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pack a query span into `info`.
    #[inline]
    pub fn pack_info(start: usize, end: usize) -> u64 {
        ((start as u64) << 32) | (end as u64)
    }

    /// Swap the two strands (used by forward extension).
    #[inline]
    pub fn swapped(&self) -> BiInterval {
        BiInterval {
            k: self.l,
            l: self.k,
            s: self.s,
            info: self.info,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_packing() {
        let iv = BiInterval {
            k: 0,
            l: 0,
            s: 1,
            info: BiInterval::pack_info(5, 19),
        };
        assert_eq!(iv.start(), 5);
        assert_eq!(iv.end(), 19);
        assert_eq!(iv.len(), 14);
        assert!(!iv.is_empty());
    }

    #[test]
    fn swap_is_involution() {
        let iv = BiInterval {
            k: 3,
            l: 9,
            s: 2,
            info: 7,
        };
        assert_eq!(iv.swapped().swapped(), iv);
        assert_eq!(iv.swapped().k, 9);
    }
}
