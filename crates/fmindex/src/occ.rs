//! The occurrence-table abstraction shared by the original and optimized
//! layouts.

use mem2_memsim::PerfSink;
use mem2_suffix::Bwt;

/// Global BWT metadata shared by both occurrence layouts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BwtMeta {
    /// Per-base occurrence counts over the whole text.
    pub counts: [i64; 4],
    /// `c_before[c]` = first conceptual row whose suffix starts with `c`
    /// (includes +1 for the sentinel row); `c_before[4]` = total rows.
    pub c_before: [i64; 5],
    /// Conceptual row whose BWT character is the sentinel.
    pub sentinel_row: i64,
    /// Stored rows (text length; conceptual rows = this + 1).
    pub n_stored: i64,
}

impl BwtMeta {
    /// Extract from a built BWT.
    pub fn from_bwt(bwt: &Bwt) -> Self {
        BwtMeta {
            counts: bwt.counts,
            c_before: bwt.c_before,
            sentinel_row: bwt.sentinel_row as i64,
            n_stored: bwt.data.len() as i64,
        }
    }

    /// Map a conceptual inclusive row bound `r` (may be −1) to the number
    /// of *stored* rows in `[0, r]` — i.e. skip the sentinel row, exactly
    /// bwa's `k -= (k >= bwt->primary)`.
    #[inline(always)]
    pub fn stored_prefix(&self, r: i64) -> i64 {
        debug_assert!(r >= -1 && r <= self.n_stored);
        r + 1 - (self.sentinel_row <= r) as i64
    }

    /// Map a conceptual row (≠ sentinel row) to its stored index.
    #[inline(always)]
    pub fn stored_index(&self, r: i64) -> i64 {
        debug_assert!(r != self.sentinel_row, "sentinel row has no stored char");
        r - (r > self.sentinel_row) as i64
    }
}

/// An FM-index occurrence table over the sentinel-removed BWT.
///
/// All row arguments are *conceptual* rows (sentinel included in the
/// numbering); `occ*` arguments may be −1 meaning "before everything".
pub trait OccTable {
    /// Shared metadata.
    fn meta(&self) -> &BwtMeta;

    /// `O(c, r)` for all four bases: occurrences in conceptual rows `[0, r]`.
    fn occ4<P: PerfSink>(&self, r: i64, sink: &mut P) -> [i64; 4];

    /// `occ4` at two bounds `r1 <= r2`, sharing bucket loads when both
    /// fall into the same bucket (bwa's `bwt_2occ4`).
    fn occ2x4<P: PerfSink>(&self, r1: i64, r2: i64, sink: &mut P) -> ([i64; 4], [i64; 4]) {
        (self.occ4(r1, sink), self.occ4(r2, sink))
    }

    /// `O(c, r)` for one base.
    fn occ<P: PerfSink>(&self, c: u8, r: i64, sink: &mut P) -> i64 {
        self.occ4(r, sink)[c as usize]
    }

    /// BWT character at conceptual row `r` (must not be the sentinel row).
    fn bwt_char(&self, r: i64) -> u8;

    /// Software-prefetch the bucket covering conceptual row `r`.
    /// Out-of-range rows (−1, or past the end) are ignored — prefetching
    /// is advisory and the algorithm issues such rows freely.
    fn prefetch_row<P: PerfSink>(&self, r: i64, sink: &mut P);

    /// Bucket size η (32 for the optimized layout, 128 for the original).
    fn bucket_size(&self) -> usize;

    /// Total bytes of the table (used to scale the modeled cache).
    fn table_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem2_suffix::build_bwt;

    #[test]
    fn stored_prefix_skips_sentinel() {
        let text = [0u8, 3, 0, 1, 2, 0, 1]; // ATACGAC
        let (bwt, _) = build_bwt(&text);
        let m = BwtMeta::from_bwt(&bwt);
        assert_eq!(m.sentinel_row, 3);
        assert_eq!(m.stored_prefix(-1), 0);
        assert_eq!(m.stored_prefix(0), 1);
        assert_eq!(m.stored_prefix(2), 3);
        assert_eq!(m.stored_prefix(3), 3); // sentinel row contributes nothing
        assert_eq!(m.stored_prefix(4), 4);
        assert_eq!(m.stored_prefix(7), 7);
        assert_eq!(m.stored_index(2), 2);
        assert_eq!(m.stored_index(4), 3);
    }
}
