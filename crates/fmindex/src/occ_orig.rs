//! The original BWA-MEM occurrence layout: η = 128, 2-bit packed BWT.
//!
//! Per 128 stored rows, one 64-byte block holds four `u64` cumulative
//! counts (32 B) followed by 128 bases packed 2-bit into four `u64`
//! (32 B) — bwa's `bwt->bwt` layout (cache-line aligned, as bwa's huge
//! page-aligned allocation is in practice). In-bucket counting uses the
//! classic `__occ_aux` bit trick, which is exactly why the paper measures
//! ~285 k instructions per read in this kernel: every occurrence query
//! scans up to four words with ~10 ALU ops per word per base.

use mem2_memsim::PerfSink;
use mem2_suffix::Bwt;

use crate::occ::{BwtMeta, OccTable};

/// Bucket size (rows).
const ETA: i64 = 128;

/// One 64-byte block: 4 cumulative counts + 128 bases packed 2-bit.
#[derive(Clone, Copy, Debug, Default)]
#[repr(C, align(64))]
struct OrigBlock {
    counts: [u64; 4],
    bwt: [u64; 4],
}

/// Original-layout occurrence table.
#[derive(Clone, Debug)]
pub struct OccOrig {
    blocks: Vec<OrigBlock>,
    meta: BwtMeta,
}

/// Count occurrences of base `c` among the 32 bases packed in `y`
/// (bwa's `__occ_aux`).
#[inline(always)]
fn occ_aux(y: u64, c: u8) -> u32 {
    let hi = if c & 2 != 0 { y } else { !y };
    let lo = if c & 1 != 0 { y } else { !y };
    ((hi >> 1) & lo & 0x5555_5555_5555_5555u64).count_ones()
}

impl OccOrig {
    /// Build from a BWT.
    pub fn build(bwt: &Bwt) -> Self {
        let meta = BwtMeta::from_bwt(bwt);
        let n = bwt.data.len();
        let n_blocks = n / ETA as usize + 1;
        let mut blocks = vec![OrigBlock::default(); n_blocks];
        let mut running = [0u64; 4];
        for (b, block) in blocks.iter_mut().enumerate() {
            block.counts = running;
            for j in 0..ETA as usize {
                let i = b * ETA as usize + j;
                if i >= n {
                    break;
                }
                let c = bwt.data[i];
                running[c as usize] += 1;
                block.bwt[j / 32] |= (c as u64) << ((j % 32) * 2);
            }
        }
        debug_assert_eq!(
            running.iter().map(|&x| x as i64).collect::<Vec<_>>(),
            meta.counts.to_vec()
        );
        OccOrig { blocks, meta }
    }

    /// Count of each base among the first `m` stored rows.
    #[inline]
    fn stored_counts<P: PerfSink>(&self, m: i64, sink: &mut P) -> [i64; 4] {
        debug_assert!(m >= 0 && m <= self.meta.n_stored);
        let b = (m / ETA) as usize;
        let y = (m % ETA) as usize;
        let block = &self.blocks[b];
        sink.load(block as *const OrigBlock as usize, 64);
        let mut out = [
            block.counts[0] as i64,
            block.counts[1] as i64,
            block.counts[2] as i64,
            block.counts[3] as i64,
        ];
        // instruction proxy: header adds + per-word bit tricks for 4 bases
        let full_words = y / 32;
        let rem = y % 32;
        sink.ops(8 + 4 * (full_words as u64 + (rem > 0) as u64) * 10);
        for c in 0..4u8 {
            let mut cnt = 0u32;
            for w in 0..full_words {
                cnt += occ_aux(block.bwt[w], c);
            }
            if rem > 0 {
                let masked = block.bwt[full_words] & ((1u64 << (2 * rem)) - 1);
                let mut partial = occ_aux(masked, c);
                if c == 0 {
                    // cleared high pairs read as base 0; subtract them
                    partial -= 32 - rem as u32;
                }
                cnt += partial;
            }
            out[c as usize] += cnt as i64;
        }
        out
    }
}

impl OccTable for OccOrig {
    fn meta(&self) -> &BwtMeta {
        &self.meta
    }

    fn occ4<P: PerfSink>(&self, r: i64, sink: &mut P) -> [i64; 4] {
        self.stored_counts(self.meta.stored_prefix(r), sink)
    }

    fn occ2x4<P: PerfSink>(&self, r1: i64, r2: i64, sink: &mut P) -> ([i64; 4], [i64; 4]) {
        debug_assert!(r1 <= r2);
        let m1 = self.meta.stored_prefix(r1);
        let m2 = self.meta.stored_prefix(r2);
        if m1 / ETA == m2 / ETA {
            // same bucket: bwa's bwt_2occ4 fast path — one memory touch,
            // the second prefix count reuses the already-loaded block
            let a = self.stored_counts(m1, sink);
            let b = self.stored_counts(m2, &mut mem2_memsim::NoopSink);
            sink.ops(4 * ((m2 % ETA) as u64 / 32 + 1) * 10);
            (a, b)
        } else {
            (self.stored_counts(m1, sink), self.stored_counts(m2, sink))
        }
    }

    fn bwt_char(&self, r: i64) -> u8 {
        let i = self.meta.stored_index(r);
        let b = (i / ETA) as usize;
        let j = (i % ETA) as usize;
        ((self.blocks[b].bwt[j / 32] >> ((j % 32) * 2)) & 3) as u8
    }

    fn prefetch_row<P: PerfSink>(&self, r: i64, sink: &mut P) {
        if r < 0 || r > self.meta.n_stored {
            return;
        }
        let m = self.meta.stored_prefix(r);
        let block = &self.blocks[(m / ETA) as usize];
        mem2_simd::prefetch_read(block);
        sink.prefetch(block as *const OrigBlock as usize);
    }

    fn bucket_size(&self) -> usize {
        ETA as usize
    }

    fn table_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<OrigBlock>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem2_memsim::NoopSink;
    use mem2_suffix::build_bwt;

    fn naive_occ4(bwt: &Bwt, r: i64) -> [i64; 4] {
        let mut out = [0i64; 4];
        for row in 0..=r.max(-1) {
            if row >= 0 {
                if let Some(c) = bwt.get(row as usize) {
                    out[c as usize] += 1;
                }
            }
        }
        out
    }

    #[test]
    fn block_is_one_aligned_cache_line() {
        assert_eq!(std::mem::size_of::<OrigBlock>(), 64);
        assert_eq!(std::mem::align_of::<OrigBlock>(), 64);
    }

    #[test]
    fn occ_aux_counts_pairs() {
        // bases 0..3 repeated little-endian
        let mut y = 0u64;
        for j in 0..32 {
            y |= ((j % 4) as u64) << (2 * j);
        }
        for c in 0..4 {
            assert_eq!(occ_aux(y, c), 8, "base {c}");
        }
        assert_eq!(occ_aux(0, 0), 32);
        assert_eq!(occ_aux(u64::MAX, 3), 32);
    }

    #[test]
    fn occ4_matches_naive_on_long_text() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let text: Vec<u8> = (0..1000).map(|_| rng.random_range(0..4u8)).collect();
        let (bwt, _) = build_bwt(&text);
        let occ = OccOrig::build(&bwt);
        let mut sink = NoopSink;
        for r in [-1i64, 0, 1, 31, 32, 127, 128, 129, 500, 999, 1000] {
            assert_eq!(occ.occ4(r, &mut sink), naive_occ4(&bwt, r), "r={r}");
        }
    }

    #[test]
    fn occ2x4_same_bucket_equals_two_calls() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let text: Vec<u8> = (0..600).map(|_| rng.random_range(0..4u8)).collect();
        let (bwt, _) = build_bwt(&text);
        let occ = OccOrig::build(&bwt);
        let mut sink = NoopSink;
        for (r1, r2) in [(-1i64, 5i64), (10, 90), (100, 140), (130, 131), (0, 600)] {
            let (a, b) = occ.occ2x4(r1, r2, &mut sink);
            assert_eq!(a, occ.occ4(r1, &mut sink), "r1={r1}");
            assert_eq!(b, occ.occ4(r2, &mut sink), "r2={r2}");
        }
    }

    #[test]
    fn bwt_char_roundtrips() {
        let text = [0u8, 3, 0, 1, 2, 0, 1];
        let (bwt, _) = build_bwt(&text);
        let occ = OccOrig::build(&bwt);
        for r in 0..bwt.rows() as i64 {
            if r != bwt.sentinel_row as i64 {
                assert_eq!(Some(occ.bwt_char(r)), bwt.get(r as usize));
            }
        }
    }

    #[test]
    fn same_bucket_pairs_touch_one_line() {
        use mem2_memsim::{CacheConfig, CountingSink};
        let text: Vec<u8> = (0..1024).map(|i| (i % 4) as u8).collect();
        let (bwt, _) = build_bwt(&text);
        let occ = OccOrig::build(&bwt);
        let mut sink = CountingSink::new(CacheConfig::scaled_to(1 << 20));
        occ.occ2x4(10, 100, &mut sink); // same eta=128 bucket
        assert_eq!(sink.counters.loads, 1);
        occ.occ2x4(10, 300, &mut sink); // different buckets
        assert_eq!(sink.counters.loads, 3);
    }
}
