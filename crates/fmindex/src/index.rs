//! Building and bundling the FM-index.

use mem2_memsim::PerfSink;
use mem2_seqio::Reference;
use mem2_suffix::{bwt_from_savec, suffix_array_width, IndexWidth, SaVec};

use crate::interval::BiInterval;
use crate::occ::{BwtMeta, OccTable};
use crate::occ_opt::OccOpt;
use crate::occ_orig::OccOrig;
use crate::sal::{FlatSa, SampledSa};

/// Which index components to materialize.
#[derive(Clone, Copy, Debug)]
pub struct BuildOpts {
    /// Build the original η=128 occurrence table.
    pub orig_occ: bool,
    /// Build the optimized η=32 occurrence table.
    pub opt_occ: bool,
    /// Keep the uncompressed suffix array.
    pub flat_sa: bool,
    /// Keep a sampled suffix array with this interval (None = skip).
    pub sampled_sa: Option<usize>,
}

impl Default for BuildOpts {
    fn default() -> Self {
        BuildOpts {
            orig_occ: true,
            opt_occ: true,
            flat_sa: true,
            sampled_sa: Some(32),
        }
    }
}

impl BuildOpts {
    /// Only the optimized components (the production aligner profile).
    pub fn optimized_only() -> Self {
        BuildOpts {
            orig_occ: false,
            opt_occ: true,
            flat_sa: true,
            sampled_sa: None,
        }
    }

    /// Only the original components (the baseline profile).
    pub fn original_only() -> Self {
        BuildOpts {
            orig_occ: true,
            opt_occ: false,
            flat_sa: false,
            sampled_sa: Some(32),
        }
    }
}

/// FM-index over `S = R · revcomp(R)` plus suffix-array storage.
#[derive(Clone, Debug)]
pub struct FmIndex {
    /// Forward reference length `L` (conceptual rows = `2L + 1`).
    pub l_pac: i64,
    /// BWT metadata (counts, cumulative counts, sentinel row).
    pub meta: BwtMeta,
    /// Original occurrence table, if built.
    pub occ_orig: Option<OccOrig>,
    /// Optimized occurrence table, if built.
    pub occ_opt: Option<OccOpt>,
    /// Flat suffix array, if kept.
    pub sa_flat: Option<FlatSa>,
    /// Sampled suffix array, if kept.
    pub sa_sampled: Option<SampledSa>,
}

impl FmIndex {
    /// Build from a prepared reference (computes the suffix array) with
    /// the narrow (u32) position layout — valid for any reference whose
    /// doubled text fits 4-byte entries.
    pub fn build(reference: &Reference, opts: &BuildOpts) -> FmIndex {
        Self::build_with_width(reference, IndexWidth::W32, opts)
    }

    /// Build with an explicit position width. The wide (u64) layout is
    /// required past the narrow ceiling (~2 Gbp forward reference) and
    /// usable on any size for testing; alignments are byte-identical
    /// across widths.
    pub fn build_with_width(reference: &Reference, width: IndexWidth, opts: &BuildOpts) -> FmIndex {
        let s = Self::doubled_text(reference);
        let sa = suffix_array_width(&s, width);
        Self::build_from_sa(reference, sa, opts)
    }

    /// Build from a precomputed suffix array of the doubled text — the
    /// fast path when loading a persisted index (linear time, no suffix
    /// sorting). Takes the suffix array by value: the flat-SA component
    /// adopts the allocation instead of copying it, so peak memory stays
    /// at one suffix array. The occurrence tables inherit the suffix
    /// array's width.
    pub fn build_from_sa(reference: &Reference, sa: impl Into<SaVec>, opts: &BuildOpts) -> FmIndex {
        let sa: SaVec = sa.into();
        let l = reference.len();
        assert_eq!(sa.len(), 2 * l + 1, "suffix array size mismatch");
        let s = Self::doubled_text(reference);
        let bwt = bwt_from_savec(&s, &sa);
        let meta = BwtMeta::from_bwt(&bwt);
        // S is reverse-complement symmetric, so for well-formed input
        // base counts pair up (A==T, C==G). Not asserted: this path
        // also rebuilds from persisted pre-checksum (v2/v3) bundles,
        // where a corrupt pac/SA may break the pairing — that must
        // degrade, not abort.
        FmIndex {
            l_pac: l as i64,
            meta,
            occ_orig: opts.orig_occ.then(|| OccOrig::build(&bwt)),
            occ_opt: opts
                .opt_occ
                .then(|| OccOpt::build_with_width(&bwt, sa.width())),
            sa_sampled: opts.sampled_sa.map(|q| SampledSa::build(&sa, q)),
            sa_flat: opts.flat_sa.then(|| FlatSa::build(sa)),
        }
    }

    /// Assemble an index from a persisted optimized occurrence table (the
    /// v3 bundle's CP-OCC section) without touching the BWT: the blocks
    /// stream in with a sequential read instead of being rebuilt from a
    /// suffix-array pass. Only the optimized components can be served
    /// this way — `opts.orig_occ` must be false (the classic profile
    /// still takes the rebuild path).
    pub fn from_persisted_occ(
        reference: &Reference,
        sa: impl Into<SaVec>,
        occ: OccOpt,
        opts: &BuildOpts,
    ) -> FmIndex {
        assert!(
            !opts.orig_occ,
            "original occurrence table is not persisted; use build_from_sa"
        );
        let sa: SaVec = sa.into();
        let l = reference.len();
        assert_eq!(sa.len(), 2 * l + 1, "suffix array size mismatch");
        let meta = *occ.meta();
        assert_eq!(meta.n_stored, 2 * l as i64, "occ table size mismatch");
        FmIndex {
            l_pac: l as i64,
            meta,
            occ_orig: None,
            occ_opt: opts.opt_occ.then_some(occ),
            sa_sampled: opts.sampled_sa.map(|q| SampledSa::build(&sa, q)),
            sa_flat: opts.flat_sa.then(|| FlatSa::build(sa)),
        }
    }

    /// Assemble an index whose big components *borrow* a mapped v4
    /// bundle — zero copies, zero rebuild work. The flat suffix array
    /// stands in for sampled storage too (a sampled table, if the
    /// profile asks for one, is derived by copying out of the mapped
    /// entries); the original occurrence table is never persisted, so
    /// `opts.orig_occ` must be false here.
    pub fn from_mapped_parts(
        reference: &Reference,
        flat: FlatSa,
        occ: OccOpt,
        opts: &BuildOpts,
    ) -> FmIndex {
        assert!(
            !opts.orig_occ,
            "original occurrence table is not persisted; use build_from_sa"
        );
        let l = reference.len();
        assert_eq!(flat.len(), 2 * l + 1, "suffix array size mismatch");
        let meta = *occ.meta();
        assert_eq!(meta.n_stored, 2 * l as i64, "occ table size mismatch");
        let sa_sampled = opts
            .sampled_sa
            .map(|q| SampledSa::build(&flat.to_savec(), q));
        FmIndex {
            l_pac: l as i64,
            meta,
            occ_orig: None,
            occ_opt: opts.opt_occ.then_some(occ),
            sa_sampled,
            sa_flat: Some(flat),
        }
    }

    /// The text the index covers: forward reference + reverse complement.
    pub fn doubled_text(reference: &Reference) -> Vec<u8> {
        let l = reference.len();
        let mut s: Vec<u8> = Vec::with_capacity(2 * l);
        for i in 0..l {
            s.push(reference.pac.get(i));
        }
        for i in (0..l).rev() {
            s.push(3 - reference.pac.get(i));
        }
        s
    }

    /// The optimized occurrence table (panics if not built).
    pub fn opt(&self) -> &OccOpt {
        self.occ_opt
            .as_ref()
            .expect("optimized occurrence table not built")
    }

    /// The original occurrence table (panics if not built).
    pub fn orig(&self) -> &OccOrig {
        self.occ_orig
            .as_ref()
            .expect("original occurrence table not built")
    }

    /// Suffix-array lookup using the preferred available storage
    /// (flat first, then sampled via the preferred occurrence table).
    pub fn sa_lookup<P: PerfSink>(&self, r: i64, sink: &mut P) -> i64 {
        if let Some(flat) = &self.sa_flat {
            return flat.lookup(r, sink);
        }
        let sampled = self
            .sa_sampled
            .as_ref()
            .expect("no suffix array storage built");
        if let Some(opt) = &self.occ_opt {
            sampled.lookup(opt, r, sink)
        } else {
            sampled.lookup(self.orig(), r, sink)
        }
    }

    /// Convert a position in the doubled coordinate space to
    /// `(forward position of the leftmost base, is_reverse)` for a match
    /// of length `len`.
    pub fn pos_to_forward(&self, pos: i64, len: i64) -> (i64, bool) {
        if pos < self.l_pac {
            (pos, false)
        } else {
            (2 * self.l_pac - (pos + len), true)
        }
    }

    /// Locate up to `cap` occurrence positions (doubled coordinates) of a
    /// bi-interval, in SA-row order (test/example helper).
    pub fn locate<P: PerfSink>(&self, iv: &BiInterval, cap: usize, sink: &mut P) -> Vec<i64> {
        let n = (iv.s as usize).min(cap);
        (0..n)
            .map(|t| self.sa_lookup(iv.k + t as i64, sink))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::backward_search;
    use mem2_memsim::NoopSink;
    use mem2_seqio::{GenomeSpec, Reference};

    #[test]
    fn build_produces_symmetric_counts() {
        let genome = GenomeSpec {
            len: 5000,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("g");
        let idx = FmIndex::build(&reference, &BuildOpts::default());
        assert_eq!(idx.meta.counts[0], idx.meta.counts[3]);
        assert_eq!(idx.meta.counts[1], idx.meta.counts[2]);
        assert_eq!(idx.meta.c_before[4], 2 * idx.l_pac + 1);
    }

    #[test]
    fn exact_search_finds_planted_pattern() {
        let codes: Vec<u8> = b"ACGTGGGTACCACGTGACGT"
            .iter()
            .map(|&b| match b {
                b'A' => 0,
                b'C' => 1,
                b'G' => 2,
                _ => 3,
            })
            .collect();
        let reference = Reference::from_codes("c", &codes);
        let idx = FmIndex::build(&reference, &BuildOpts::default());
        let mut sink = NoopSink;
        // "ACGT" occurs 3 times forward; its revcomp ACGT (self-complementary)
        // 3 more times on the reverse strand -> 6 in doubled space
        let iv = backward_search(idx.opt(), &[0, 1, 2, 3], &mut sink).unwrap();
        assert_eq!(iv.s, 6);
        let mut pos = idx.locate(&iv, 100, &mut sink);
        pos.sort_unstable();
        // forward occurrences at 0, 11, 16
        let fw: Vec<i64> = pos.iter().copied().filter(|&p| p < idx.l_pac).collect();
        assert_eq!(fw, vec![0, 11, 16]);
    }

    #[test]
    fn pos_to_forward_mirrors_reverse_hits() {
        let genome = GenomeSpec {
            len: 1000,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("g");
        let idx = FmIndex::build(&reference, &BuildOpts::default());
        let (p, rev) = idx.pos_to_forward(10, 50);
        assert_eq!((p, rev), (10, false));
        // a hit starting at 2L-60 in doubled space with length 50 covers
        // doubled [2L-60, 2L-10) == forward [10, 60) on the minus strand
        let (p, rev) = idx.pos_to_forward(2 * idx.l_pac - 60, 50);
        assert_eq!((p, rev), (10, true));
    }

    #[test]
    fn missing_pattern_is_none() {
        let codes = vec![0u8; 100]; // poly-A
        let reference = Reference::from_codes("c", &codes);
        let idx = FmIndex::build(&reference, &BuildOpts::default());
        let mut sink = NoopSink;
        assert!(backward_search(idx.opt(), &[1, 1, 1], &mut sink).is_none());
        assert!(backward_search(idx.opt(), &[0, 4, 0], &mut sink).is_none());
        assert!(backward_search(idx.opt(), &[], &mut sink).is_none());
    }
}
