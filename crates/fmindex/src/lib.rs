//! FM-index kernels: SMEM seeding and suffix-array lookup (SAL).
//!
//! This crate implements both sides of the paper's comparison:
//!
//! * the **original** BWA-MEM layout — occurrence table with bucket size
//!   η=128 and 2-bit packed BWT counted with the classic bit-trick
//!   (`bwt_occ_aux`), plus a sampled suffix array resolved by LF-walking —
//!   in [`occ_orig`] and [`sal::SampledSa`];
//! * the **optimized** layout of the paper — η=32, one byte per BWT base,
//!   one 64-byte cache-line-aligned bucket, vector byte-compare + popcount,
//!   software prefetching, and a flat uncompressed suffix array — in
//!   [`occ_opt`] and [`sal::FlatSa`].
//!
//! The SMEM search ([`smem`]) is a faithful port of bwa's `bwt_smem1a` /
//! `mem_collect_intv` / `bwt_seed_strategy1`, generic over the occurrence
//! table, so the two layouts produce **identical seeds** — the paper's
//! central like-for-like replacement requirement. Every kernel is also
//! generic over a [`mem2_memsim::PerfSink`] for counter collection.
//!
//! Index convention (see `mem2-suffix`): the BWT covers S = R·revcomp(R)
//! plus a virtual sentinel; conceptual rows number `2L+1`, the sentinel
//! row is recorded, and occurrence tables store rows with the sentinel
//! removed.
//!
//! Key types: [`FmIndex`], [`BiInterval`] (bidirectional SA interval),
//! [`SmemOpts`], the [`smem_batch`] resumable seeding state machines,
//! and the [`sal`] lookup structures. Introduced in PR 1; latency-hiding
//! batched seeding in PR 5, width/mmap-generic storage in PR 6.

#![deny(missing_docs)]

pub mod ext;
pub mod index;
pub mod interval;
pub mod occ;
pub mod occ_opt;
pub mod occ_orig;
pub mod sal;
pub mod smem;
pub mod smem_batch;

pub use ext::{backward_ext4, backward_ext_rows, forward_ext4, forward_ext_rows};
pub use index::{BuildOpts, FmIndex};
pub use interval::BiInterval;
pub use occ::{BwtMeta, OccTable};
pub use occ_opt::{CpBlock, CpBlockWide, OccOpt};
pub use occ_orig::OccOrig;
pub use sal::{FlatSa, SampledSa, SAL_PREFETCH_DIST};
pub use smem::{collect_intv, seed_strategy1, smem1a, SmemAux, SmemOpts};
pub use smem_batch::{SeedTask, SmemScheduler, DEFAULT_SEED_BATCH};
