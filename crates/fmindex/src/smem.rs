//! SMEM search — a faithful port of bwa's `bwt_smem1a`,
//! `bwt_seed_strategy1` and `mem_collect_intv` (Algorithm 4 of the paper,
//! plus the re-seeding and third-round seeding passes BWA-MEM layers on
//! top), generic over the occurrence-table layout.
//!
//! The `prefetch` flag implements §4.3: whenever a new bi-interval is
//! produced that will be used for a future occurrence query, the bucket(s)
//! it will touch are software-prefetched. Within a single read those
//! prefetches sit on the query's own dependency chain and hide little —
//! the batched pipeline instead drives this algorithm through the
//! interleaved scheduler in [`crate::smem_batch`], which rotates many
//! reads' state machines so each prefetch gets a full rotation of
//! independent work before its demand load. This module remains the
//! reference implementation the scheduler is pinned against (and the
//! classic workflow's path).

use mem2_memsim::PerfSink;

use crate::ext::{backward_ext4, forward_ext4, set_intv};
use crate::interval::BiInterval;
use crate::occ::OccTable;

/// Reusable scratch buffers (the paper's "allocate once, reuse across
/// batches" discipline — one `SmemAux` lives per worker thread).
#[derive(Clone, Debug, Default)]
pub struct SmemAux {
    /// Per-call SMEM output of `smem1a`.
    pub mem1: Vec<BiInterval>,
    /// Swap buffers for the backward pass.
    pub swap: SwapBufs,
}

/// The `curr`/`prev` interval buffers of `bwt_smem1a`.
#[derive(Clone, Debug, Default)]
pub struct SwapBufs {
    curr: Vec<BiInterval>,
    prev: Vec<BiInterval>,
}

/// Seeding parameters (bwa-mem defaults).
#[derive(Clone, Copy, Debug)]
pub struct SmemOpts {
    /// Minimum seed length (`-k`, default 19).
    pub min_seed_len: i32,
    /// Split factor for re-seeding (default 1.5).
    pub split_factor: f64,
    /// Maximum occurrence count for re-seeding (default 10).
    pub split_width: i64,
    /// Third-round seeding occurrence cap (`max_mem_intv`, default 20;
    /// 0 disables the pass).
    pub max_mem_intv: i64,
}

impl Default for SmemOpts {
    fn default() -> Self {
        SmemOpts {
            min_seed_len: 19,
            split_factor: 1.5,
            split_width: 10,
            max_mem_intv: 20,
        }
    }
}

impl SmemOpts {
    /// bwa's split length: `(int)(min_seed_len * split_factor + .499)`.
    pub fn split_len(&self) -> i64 {
        (self.min_seed_len as f64 * self.split_factor + 0.499) as i64
    }
}

/// Find all SMEMs overlapping query position `x` (bwa's `bwt_smem1a`).
///
/// `min_intv` is the minimum interval size to continue extension (pass 1
/// uses 1; re-seeding uses `s+1` of the parent SMEM). `max_intv` is the
/// "good enough interval" cutoff of the never-used third-round variant
/// (0 in every caller, kept for fidelity — including bwa's use of the
/// *stale* forward-loop `ik` in the backward pass).
///
/// Returns the next query position to seed from (end of the longest
/// forward match) and fills `mem` with the SMEMs sorted by start.
#[allow(clippy::too_many_arguments)]
pub fn smem1a<O: OccTable, P: PerfSink>(
    occ: &O,
    query: &[u8],
    x: usize,
    min_intv: i64,
    max_intv: i64,
    mem: &mut Vec<BiInterval>,
    bufs: &mut SwapBufs,
    prefetch: bool,
    sink: &mut P,
) -> usize {
    let len = query.len();
    mem.clear();
    if x >= len || query[x] > 3 {
        return x + 1;
    }
    let min_intv = min_intv.max(1);
    let mut ik = set_intv(occ, query[x]);
    ik.info = (x as u64) + 1;
    sink.ops(8);

    // ---- forward search ----
    let curr = &mut bufs.curr;
    let prev = &mut bufs.prev;
    curr.clear();
    let mut i = x + 1;
    while i < len {
        if ik.s < max_intv {
            // an interval small enough (third-round variant only)
            curr.push(ik);
            break;
        } else if query[i] < 4 {
            let ok = forward_ext4(occ, &ik, sink);
            let o = ok[query[i] as usize];
            sink.ops(4);
            if o.s != ik.s {
                // change of the interval size
                curr.push(ik);
                if o.s < min_intv {
                    break; // too small to be extended further
                }
            }
            ik = o;
            ik.info = (i as u64) + 1;
            if prefetch {
                // the next forward extension (or a future backward
                // extension seeded from Curr) reads occ at l-1 / l+s-1
                // of the swapped interval
                let (r1, r2) = crate::ext::forward_ext_rows(&ik);
                occ.prefetch_row(r1, sink);
                occ.prefetch_row(r2, sink);
            }
        } else {
            // ambiguous base: always terminate extension
            curr.push(ik);
            break;
        }
        i += 1;
    }
    if i == len {
        curr.push(ik); // the last interval if we reached the end
    }
    curr.reverse(); // longest matches (smallest intervals) first
    let ret = (curr[0].info & 0xFFFF_FFFF) as usize;
    std::mem::swap(curr, prev);

    // ---- backward search ----
    let mut i = x as i64 - 1;
    loop {
        let c: i32 = if i < 0 {
            -1
        } else if query[i as usize] < 4 {
            query[i as usize] as i32
        } else {
            -1
        };
        curr.clear();
        for j in 0..prev.len() {
            let p = prev[j];
            // bwa quirk preserved: the max_intv test uses the *stale* ik
            // from the forward loop (later overwritten below); with
            // max_intv == 0 (every real caller) both tests are inert.
            let ok = if c >= 0 && ik.s >= max_intv {
                Some(backward_ext4(occ, &p, sink)[c as usize])
            } else {
                None
            };
            sink.ops(6);
            if c < 0 || ik.s < max_intv || ok.expect("extension computed").s < min_intv {
                // keep the hit: reached the beginning, an ambiguous base,
                // or the interval became too small
                if curr.is_empty()
                    && (mem.is_empty()
                        || ((i + 1) as u64) < (mem.last().expect("nonempty").info >> 32))
                {
                    ik = p;
                    ik.info |= ((i + 1) as u64) << 32;
                    mem.push(ik);
                }
                // otherwise the match is contained in a longer match
            } else {
                let mut o = ok.expect("extension computed");
                if curr.is_empty() || o.s != curr.last().expect("nonempty").s {
                    o.info = p.info;
                    curr.push(o);
                    if prefetch {
                        // o feeds a future backward extension reading
                        // occ at rows k-1 and k+s-1
                        let (r1, r2) = crate::ext::backward_ext_rows(&o);
                        occ.prefetch_row(r1, sink);
                        occ.prefetch_row(r2, sink);
                    }
                }
            }
        }
        if curr.is_empty() {
            break;
        }
        std::mem::swap(curr, prev);
        if i < 0 {
            break;
        }
        i -= 1;
    }
    mem.reverse(); // sort by the start of the match
    ret
}

/// Third-round forward-only seeding (bwa's `bwt_seed_strategy1`): find one
/// length-≥`min_len` match with fewer than `max_intv` occurrences starting
/// at `x`. Returns the next start position and the seed, if any.
pub fn seed_strategy1<O: OccTable, P: PerfSink>(
    occ: &O,
    query: &[u8],
    x: usize,
    min_len: i64,
    max_intv: i64,
    sink: &mut P,
) -> (usize, Option<BiInterval>) {
    let len = query.len();
    if x >= len || query[x] > 3 {
        return (x + 1, None);
    }
    let mut ik = set_intv(occ, query[x]);
    sink.ops(8);
    for i in x + 1..len {
        if query[i] < 4 {
            let o = forward_ext4(occ, &ik, sink)[query[i] as usize];
            sink.ops(4);
            if o.s < max_intv && (i - x) as i64 >= min_len {
                if o.s > 0 {
                    let mut m = o;
                    m.info = BiInterval::pack_info(x, i + 1);
                    return (i + 1, Some(m));
                }
                return (i + 1, None);
            }
            ik = o;
        } else {
            return (i + 1, None);
        }
    }
    (len, None)
}

/// Full seeding pipeline (bwa's `mem_collect_intv`): SMEM pass,
/// re-seeding pass over long low-occurrence SMEMs, third-round pass,
/// then sort by `info`.
pub fn collect_intv<O: OccTable, P: PerfSink>(
    occ: &O,
    opts: &SmemOpts,
    query: &[u8],
    out: &mut Vec<BiInterval>,
    aux: &mut SmemAux,
    prefetch: bool,
    sink: &mut P,
) {
    out.clear();
    let len = query.len();
    let split_len = opts.split_len();
    let SmemAux { mem1, swap } = aux;

    // pass 1: all SMEMs
    let mut x = 0usize;
    while x < len {
        if query[x] < 4 {
            x = smem1a(occ, query, x, 1, 0, mem1, swap, prefetch, sink);
            for p in mem1.iter() {
                if p.len() >= opts.min_seed_len as usize {
                    out.push(*p);
                }
            }
        } else {
            x += 1;
        }
    }

    // pass 2: re-seed inside long, low-occurrence SMEMs from the middle
    let old_n = out.len();
    for k in 0..old_n {
        let p = out[k];
        let (start, end) = (p.start(), p.end());
        if ((end - start) as i64) < split_len || p.s > opts.split_width {
            continue;
        }
        smem1a(
            occ,
            query,
            (start + end) >> 1,
            p.s + 1,
            0,
            mem1,
            swap,
            prefetch,
            sink,
        );
        for q in mem1.iter() {
            if q.len() >= opts.min_seed_len as usize {
                out.push(*q);
            }
        }
    }

    // pass 3: LAST-like forward-only seeding
    if opts.max_mem_intv > 0 {
        let mut x = 0usize;
        while x < len {
            if query[x] < 4 {
                let (nx, m) = seed_strategy1(
                    occ,
                    query,
                    x,
                    opts.min_seed_len as i64,
                    opts.max_mem_intv,
                    sink,
                );
                x = nx;
                if let Some(m) = m {
                    out.push(m);
                }
            } else {
                x += 1;
            }
        }
    }

    out.sort_by_key(|p| p.info);
}
