//! Bi-interval backward/forward extension (Algorithms 2 and 3 of the
//! paper; bwa's `bwt_extend`).

use mem2_memsim::PerfSink;

use crate::interval::BiInterval;
use crate::occ::OccTable;

/// Backward extension: given the bi-interval of string `X`, return the
/// bi-intervals of `bX` for all four bases `b` (index = base code).
///
/// Derivation of the `l` assignment: within the SA interval of
/// `revcomp(X)`, sub-intervals for the appended character are ordered
/// `$ < A < C < G < T`, and appending `c` to `revcomp(X)` corresponds to
/// prepending `b = complement(c)` to `X`. The sentinel sub-interval is
/// non-empty iff the full-text suffix row falls inside `[k, k+s)`.
#[inline]
pub fn backward_ext4<O: OccTable, P: PerfSink>(
    occ: &O,
    ik: &BiInterval,
    sink: &mut P,
) -> [BiInterval; 4] {
    let meta = occ.meta();
    let (tk, tl) = occ.occ2x4(ik.k - 1, ik.k + ik.s - 1, sink);
    sink.ops(24); // interval arithmetic proxy
    let mut out = [BiInterval::default(); 4];
    for c in 0..4 {
        out[c].k = meta.c_before[c] + tk[c];
        out[c].s = tl[c] - tk[c];
        out[c].info = ik.info;
    }
    let sentinel_in = (ik.k <= meta.sentinel_row && meta.sentinel_row < ik.k + ik.s) as i64;
    out[3].l = ik.l + sentinel_in;
    out[2].l = out[3].l + out[3].s;
    out[1].l = out[2].l + out[2].s;
    out[0].l = out[1].l + out[1].s;
    out
}

/// Forward extension: given the bi-interval of `X`, return the
/// bi-intervals of `Xb` for all four bases `b` (index = base code).
///
/// Implemented per Algorithm 3: swap strands, extend backward with the
/// complement, swap back. `Xb`'s reverse complement is
/// `complement(b)·revcomp(X)`, so `result[b] = swap(back[3-b])`.
#[inline]
pub fn forward_ext4<O: OccTable, P: PerfSink>(
    occ: &O,
    ik: &BiInterval,
    sink: &mut P,
) -> [BiInterval; 4] {
    let back = backward_ext4(occ, &ik.swapped(), sink);
    let mut out = [BiInterval::default(); 4];
    for b in 0..4 {
        out[b] = back[3 - b].swapped();
    }
    out
}

/// The two occurrence rows a backward extension of `ik` will query
/// (`occ2x4(k−1, k+s−1)` in [`backward_ext4`]) — the rows a prefetch
/// issued ahead of that extension should touch.
#[inline]
pub fn backward_ext_rows(ik: &BiInterval) -> (i64, i64) {
    (ik.k - 1, ik.k + ik.s - 1)
}

/// The two occurrence rows a forward extension of `ik` will query — the
/// backward rows of the swapped interval (see [`forward_ext4`]).
#[inline]
pub fn forward_ext_rows(ik: &BiInterval) -> (i64, i64) {
    (ik.l - 1, ik.l + ik.s - 1)
}

/// Initial bi-interval of a single base `c`.
#[inline]
pub fn set_intv<O: OccTable>(occ: &O, c: u8) -> BiInterval {
    debug_assert!(c < 4);
    let meta = occ.meta();
    BiInterval {
        k: meta.c_before[c as usize],
        l: meta.c_before[3 - c as usize],
        s: meta.counts[c as usize],
        info: 0,
    }
}

/// Exact backward search of a full pattern; returns its bi-interval if the
/// pattern occurs (test/example helper, not a paper kernel).
pub fn backward_search<O: OccTable, P: PerfSink>(
    occ: &O,
    pattern: &[u8],
    sink: &mut P,
) -> Option<BiInterval> {
    let (&last, rest) = pattern.split_last()?;
    if last > 3 {
        return None;
    }
    let mut ik = set_intv(occ, last);
    for &b in rest.iter().rev() {
        if b > 3 || ik.s == 0 {
            return None;
        }
        ik = backward_ext4(occ, &ik, sink)[b as usize];
    }
    if ik.s > 0 {
        Some(ik)
    } else {
        None
    }
}
