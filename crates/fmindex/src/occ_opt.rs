//! The paper's optimized occurrence layout (§4.4): η = 32, one byte per
//! base, one bucket per 64-byte cache line.
//!
//! Each bucket stores four cumulative counts, 32 bases at one byte each,
//! and (in the narrow layout) padding so buckets stay cache-line
//! aligned. In-bucket counting is [`mem2_simd::counts4_in_prefix`] — a
//! byte compare + popcount that dispatches to the widest available
//! vector backend (on AVX2 literally the paper's `vpcmpeqb` +
//! `vpmovmskb` + `popcnt` sequence, with an SSE2/NEON/SWAR fallback),
//! replacing the original's multi-word bit manipulation.
//!
//! Two bucket layouts exist, chosen by the index width:
//!
//! * [`CpBlock`] — 4-byte counts (16 B) + 32 bases + 16 B padding.
//!   Counts saturate at `u32::MAX`, so this layout is only valid while
//!   the doubled text has fewer than 4 G rows (&approx; 2 Gbp forward
//!   reference). This is the paper's exact struct.
//! * [`CpBlockWide`] — 8-byte counts (32 B) + 32 bases, still exactly
//!   one 64-byte cache line with zero padding. Used past the narrow
//!   ceiling (human-genome-scale references); the per-query access
//!   pattern (one line per bucket) is unchanged.
//!
//! Either layout can live in owned memory or borrow a `mmap`ed v4
//! bundle section in place ([`OccOpt::from_region`]) — blocks are stored
//! on disk as raw 64-byte records at a page-aligned offset precisely so
//! the mapped bytes *are* the runtime table.

use mem2_memsim::PerfSink;
use mem2_seqio::ByteRegion;
use mem2_simd::counts4_in_prefix;
use mem2_suffix::{Bwt, IndexWidth};

use crate::occ::{BwtMeta, OccTable};

/// Bucket size (rows per block).
const ETA: i64 = 32;

/// One 64-byte occurrence bucket, narrow (4-byte-count) layout.
#[derive(Clone, Copy, Debug)]
#[repr(C, align(64))]
pub struct CpBlock {
    /// Cumulative per-base counts of all stored rows before this bucket.
    pub counts: [u32; 4],
    /// The bucket's 32 BWT bases, one byte each; padding rows are 0xFF.
    pub bases: [u8; 32],
    _pad: [u8; 16],
}

impl Default for CpBlock {
    fn default() -> Self {
        CpBlock::new([0; 4], [0xFF; 32])
    }
}

impl CpBlock {
    /// Assemble a block from its persisted payload (counts + bases; the
    /// padding carries no information).
    pub fn new(counts: [u32; 4], bases: [u8; 32]) -> Self {
        CpBlock {
            counts,
            bases,
            _pad: [0; 16],
        }
    }
}

/// One 64-byte occurrence bucket, wide (8-byte-count) layout: four
/// `u64` cumulative counts fill the half-line the narrow layout pads,
/// so the wide table costs no extra cache lines per query.
#[derive(Clone, Copy, Debug)]
#[repr(C, align(64))]
pub struct CpBlockWide {
    /// Cumulative per-base counts of all stored rows before this bucket.
    pub counts: [u64; 4],
    /// The bucket's 32 BWT bases, one byte each; padding rows are 0xFF.
    pub bases: [u8; 32],
}

impl Default for CpBlockWide {
    fn default() -> Self {
        CpBlockWide {
            counts: [0; 4],
            bases: [0xFF; 32],
        }
    }
}

// Safety: repr(C), fully initialized fields (the narrow layout's `_pad`
// is a real zero-filled field, not compiler padding), no invariants —
// any byte pattern is a valid block, which is what lets a mapped v4
// section be viewed as blocks in place.
unsafe impl mem2_seqio::Pod for CpBlock {}
unsafe impl mem2_seqio::Pod for CpBlockWide {}

/// Width- and ownership-dispatched bucket storage for [`OccOpt`].
#[derive(Clone, Debug)]
enum BlockStore {
    Narrow(Vec<CpBlock>),
    Wide(Vec<CpBlockWide>),
    /// Validated at construction: 64-byte aligned, length % 64 == 0.
    MappedNarrow(ByteRegion),
    MappedWide(ByteRegion),
}

/// Optimized-layout occurrence table.
#[derive(Clone, Debug)]
pub struct OccOpt {
    blocks: BlockStore,
    meta: BwtMeta,
}

#[inline]
fn mapped_narrow(region: &ByteRegion) -> &[CpBlock] {
    region
        .typed::<CpBlock>()
        .expect("validated at construction")
}

#[inline]
fn mapped_wide(region: &ByteRegion) -> &[CpBlockWide] {
    region
        .typed::<CpBlockWide>()
        .expect("validated at construction")
}

impl OccOpt {
    /// Build from a BWT, choosing the count width automatically: 4-byte
    /// counts while the row count fits `u32`, 8-byte counts beyond.
    pub fn build(bwt: &Bwt) -> Self {
        let width = if bwt.data.len() < u32::MAX as usize {
            IndexWidth::W32
        } else {
            IndexWidth::W64
        };
        Self::build_with_width(bwt, width)
    }

    /// Build with an explicit count width. The narrow layout asserts
    /// the row count fits its 4-byte counts; the wide layout works for
    /// any size (tests use it on tiny texts to exercise the 64-bit
    /// path without a 2 Gbp fixture).
    pub fn build_with_width(bwt: &Bwt, width: IndexWidth) -> Self {
        let meta = BwtMeta::from_bwt(bwt);
        let n = bwt.data.len();
        let n_blocks = n / ETA as usize + 1;
        let blocks = match width {
            IndexWidth::W32 => {
                assert!(
                    n < u32::MAX as usize,
                    "narrow occurrence table requires < 4G rows (4-byte counts)"
                );
                let mut blocks = vec![CpBlock::default(); n_blocks];
                let mut running = [0u32; 4];
                for (b, block) in blocks.iter_mut().enumerate() {
                    block.counts = running;
                    for j in 0..ETA as usize {
                        let i = b * ETA as usize + j;
                        if i >= n {
                            break;
                        }
                        let c = bwt.data[i];
                        block.bases[j] = c;
                        running[c as usize] += 1;
                    }
                }
                BlockStore::Narrow(blocks)
            }
            IndexWidth::W64 => {
                let mut blocks = vec![CpBlockWide::default(); n_blocks];
                let mut running = [0u64; 4];
                for (b, block) in blocks.iter_mut().enumerate() {
                    block.counts = running;
                    for j in 0..ETA as usize {
                        let i = b * ETA as usize + j;
                        if i >= n {
                            break;
                        }
                        let c = bwt.data[i];
                        block.bases[j] = c;
                        running[c as usize] += 1;
                    }
                }
                BlockStore::Wide(blocks)
            }
        };
        OccOpt { blocks, meta }
    }

    /// Reassemble a table from persisted narrow parts (the index
    /// bundle's v3 CP-OCC section). The caller must supply blocks
    /// consistent with `meta` — `n_stored / 32 + 1` of them, with
    /// cumulative counts — as written by the bundle encoder.
    pub fn from_parts(meta: BwtMeta, blocks: Vec<CpBlock>) -> Self {
        debug_assert_eq!(blocks.len() as i64, meta.n_stored / ETA + 1);
        OccOpt {
            blocks: BlockStore::Narrow(blocks),
            meta,
        }
    }

    /// Reassemble a table from persisted wide parts (a 64-bit v4
    /// bundle decoded into owned storage).
    pub fn from_wide_parts(meta: BwtMeta, blocks: Vec<CpBlockWide>) -> Self {
        debug_assert_eq!(blocks.len() as i64, meta.n_stored / ETA + 1);
        OccOpt {
            blocks: BlockStore::Wide(blocks),
            meta,
        }
    }

    /// Borrow the blocks from a shared loaded region (the `mmap`
    /// zero-copy path): the mapped bytes are used as the block array in
    /// place. Fails when the region cannot be viewed as blocks
    /// (misaligned, wrong size, a big-endian host, or a block count
    /// inconsistent with `meta`) — callers fall back to an owned decode.
    pub fn from_region(
        meta: BwtMeta,
        region: ByteRegion,
        width: IndexWidth,
    ) -> Result<Self, &'static str> {
        let expect_blocks = (meta.n_stored / ETA + 1) as usize;
        let blocks = match width {
            IndexWidth::W32 => {
                let view = region
                    .typed::<CpBlock>()
                    .ok_or("CP-OCC region not viewable as narrow blocks in place")?;
                if view.len() != expect_blocks {
                    return Err("CP-OCC region block count disagrees with metadata");
                }
                BlockStore::MappedNarrow(region)
            }
            IndexWidth::W64 => {
                let view = region
                    .typed::<CpBlockWide>()
                    .ok_or("CP-OCC region not viewable as wide blocks in place")?;
                if view.len() != expect_blocks {
                    return Err("CP-OCC region block count disagrees with metadata");
                }
                BlockStore::MappedWide(region)
            }
        };
        Ok(OccOpt { blocks, meta })
    }

    /// Count width of this table's blocks.
    pub fn width(&self) -> IndexWidth {
        match &self.blocks {
            BlockStore::Narrow(_) | BlockStore::MappedNarrow(_) => IndexWidth::W32,
            BlockStore::Wide(_) | BlockStore::MappedWide(_) => IndexWidth::W64,
        }
    }

    /// True when the blocks borrow a mapped region instead of owning
    /// their memory.
    pub fn is_mapped(&self) -> bool {
        matches!(
            &self.blocks,
            BlockStore::MappedNarrow(_) | BlockStore::MappedWide(_)
        )
    }

    /// Number of checkpoint blocks.
    pub fn n_blocks(&self) -> usize {
        match &self.blocks {
            BlockStore::Narrow(v) => v.len(),
            BlockStore::Wide(v) => v.len(),
            BlockStore::MappedNarrow(m) => mapped_narrow(m).len(),
            BlockStore::MappedWide(m) => mapped_wide(m).len(),
        }
    }

    /// The narrow checkpoint blocks, when this is the 4-byte-count
    /// layout (v3 persistence writes these).
    pub fn narrow_blocks(&self) -> Option<&[CpBlock]> {
        match &self.blocks {
            BlockStore::Narrow(v) => Some(v),
            BlockStore::MappedNarrow(m) => Some(mapped_narrow(m)),
            _ => None,
        }
    }

    /// The wide checkpoint blocks, when this is the 8-byte-count layout.
    pub fn wide_blocks(&self) -> Option<&[CpBlockWide]> {
        match &self.blocks {
            BlockStore::Wide(v) => Some(v),
            BlockStore::MappedWide(m) => Some(mapped_wide(m)),
            _ => None,
        }
    }

    /// The blocks as raw 64-byte little-endian records — exactly the v4
    /// bundle's on-disk CP-OCC section payload.
    pub fn blocks_bytes(&self) -> &[u8] {
        match &self.blocks {
            // Safety: CpBlock/CpBlockWide are Pod (repr(C), all fields
            // initialized including the narrow `_pad`), so their bytes
            // are readable; lengths are exact multiples of 64.
            BlockStore::Narrow(v) => unsafe {
                std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(&v[..]))
            },
            BlockStore::Wide(v) => unsafe {
                std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(&v[..]))
            },
            BlockStore::MappedNarrow(m) => m.as_slice(),
            BlockStore::MappedWide(m) => m.as_slice(),
        }
    }

    /// Rows per block (the persistence layer's consistency check).
    pub const fn rows_per_block() -> usize {
        ETA as usize
    }

    /// Count of each base among the first `m` stored rows.
    #[inline]
    fn stored_counts<P: PerfSink>(&self, m: i64, sink: &mut P) -> [i64; 4] {
        debug_assert!(m >= 0 && m <= self.meta.n_stored);
        let b = (m / ETA) as usize;
        let y = (m % ETA) as usize;
        // instruction proxy: 4 header adds + per-base compare/popcnt (~3)
        sink.ops(4 + 4 * 3);
        let mut out = [0i64; 4];
        match &self.blocks {
            BlockStore::Narrow(v) => {
                let block = &v[b];
                sink.load(block as *const CpBlock as usize, 64);
                let inb = counts4_in_prefix(&block.bases, y);
                for c in 0..4 {
                    out[c] = block.counts[c] as i64 + inb[c] as i64;
                }
            }
            BlockStore::MappedNarrow(mr) => {
                let block = &mapped_narrow(mr)[b];
                sink.load(block as *const CpBlock as usize, 64);
                let inb = counts4_in_prefix(&block.bases, y);
                for c in 0..4 {
                    out[c] = block.counts[c] as i64 + inb[c] as i64;
                }
            }
            BlockStore::Wide(v) => {
                let block = &v[b];
                sink.load(block as *const CpBlockWide as usize, 64);
                let inb = counts4_in_prefix(&block.bases, y);
                for c in 0..4 {
                    out[c] = block.counts[c] as i64 + inb[c] as i64;
                }
            }
            BlockStore::MappedWide(mr) => {
                let block = &mapped_wide(mr)[b];
                sink.load(block as *const CpBlockWide as usize, 64);
                let inb = counts4_in_prefix(&block.bases, y);
                for c in 0..4 {
                    out[c] = block.counts[c] as i64 + inb[c] as i64;
                }
            }
        }
        out
    }

    /// The bucket's bases at block `b`.
    #[inline]
    fn bases_of(&self, b: usize) -> &[u8; 32] {
        match &self.blocks {
            BlockStore::Narrow(v) => &v[b].bases,
            BlockStore::Wide(v) => &v[b].bases,
            BlockStore::MappedNarrow(m) => &mapped_narrow(m)[b].bases,
            BlockStore::MappedWide(m) => &mapped_wide(m)[b].bases,
        }
    }

    /// Address of block `b` (prefetch target).
    #[inline]
    fn block_addr(&self, b: usize) -> usize {
        match &self.blocks {
            BlockStore::Narrow(v) => {
                let block = &v[b];
                mem2_simd::prefetch_read(block);
                block as *const CpBlock as usize
            }
            BlockStore::Wide(v) => {
                let block = &v[b];
                mem2_simd::prefetch_read(block);
                block as *const CpBlockWide as usize
            }
            BlockStore::MappedNarrow(m) => {
                let block = &mapped_narrow(m)[b];
                mem2_simd::prefetch_read(block);
                block as *const CpBlock as usize
            }
            BlockStore::MappedWide(m) => {
                let block = &mapped_wide(m)[b];
                mem2_simd::prefetch_read(block);
                block as *const CpBlockWide as usize
            }
        }
    }
}

impl OccTable for OccOpt {
    fn meta(&self) -> &BwtMeta {
        &self.meta
    }

    fn occ4<P: PerfSink>(&self, r: i64, sink: &mut P) -> [i64; 4] {
        self.stored_counts(self.meta.stored_prefix(r), sink)
    }

    fn occ2x4<P: PerfSink>(&self, r1: i64, r2: i64, sink: &mut P) -> ([i64; 4], [i64; 4]) {
        debug_assert!(r1 <= r2);
        let m1 = self.meta.stored_prefix(r1);
        let m2 = self.meta.stored_prefix(r2);
        if m1 / ETA == m2 / ETA {
            let a = self.stored_counts(m1, sink);
            let b = self.stored_counts(m2, &mut mem2_memsim::NoopSink);
            sink.ops(4 * 3);
            (a, b)
        } else {
            (self.stored_counts(m1, sink), self.stored_counts(m2, sink))
        }
    }

    fn bwt_char(&self, r: i64) -> u8 {
        let i = self.meta.stored_index(r);
        self.bases_of((i / ETA) as usize)[(i % ETA) as usize]
    }

    fn prefetch_row<P: PerfSink>(&self, r: i64, sink: &mut P) {
        if r < 0 || r > self.meta.n_stored {
            return;
        }
        let m = self.meta.stored_prefix(r);
        sink.prefetch(self.block_addr((m / ETA) as usize));
    }

    fn bucket_size(&self) -> usize {
        ETA as usize
    }

    fn table_bytes(&self) -> usize {
        self.n_blocks() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem2_memsim::{CacheConfig, CountingSink, NoopSink};
    use mem2_seqio::{AlignedBytes, RegionOwner};
    use mem2_suffix::build_bwt;
    use std::sync::Arc;

    #[test]
    fn blocks_are_one_cache_line() {
        assert_eq!(std::mem::size_of::<CpBlock>(), 64);
        assert_eq!(std::mem::align_of::<CpBlock>(), 64);
        assert_eq!(std::mem::size_of::<CpBlockWide>(), 64);
        assert_eq!(std::mem::align_of::<CpBlockWide>(), 64);
    }

    #[test]
    fn occ4_matches_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let text: Vec<u8> = (0..777).map(|_| rng.random_range(0..4u8)).collect();
        let (bwt, _) = build_bwt(&text);
        let occ = OccOpt::build(&bwt);
        assert_eq!(occ.width(), IndexWidth::W32);
        let mut sink = NoopSink;
        for r in -1..=text.len() as i64 {
            let mut naive = [0i64; 4];
            for row in 0..=r {
                if row >= 0 {
                    if let Some(c) = bwt.get(row as usize) {
                        naive[c as usize] += 1;
                    }
                }
            }
            assert_eq!(occ.occ4(r, &mut sink), naive, "r={r}");
        }
    }

    #[test]
    fn wide_table_matches_narrow_everywhere() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let text: Vec<u8> = (0..1500).map(|_| rng.random_range(0..4u8)).collect();
        let (bwt, _) = build_bwt(&text);
        let narrow = OccOpt::build_with_width(&bwt, IndexWidth::W32);
        let wide = OccOpt::build_with_width(&bwt, IndexWidth::W64);
        assert_eq!(wide.width(), IndexWidth::W64);
        assert!(narrow.wide_blocks().is_none());
        assert!(wide.narrow_blocks().is_none());
        assert_eq!(narrow.n_blocks(), wide.n_blocks());
        assert_eq!(narrow.table_bytes(), wide.table_bytes());
        let mut sink = NoopSink;
        for r in -1..=text.len() as i64 {
            assert_eq!(narrow.occ4(r, &mut sink), wide.occ4(r, &mut sink), "r={r}");
        }
        for r in 0..=text.len() as i64 {
            if r != bwt.sentinel_row as i64 {
                assert_eq!(narrow.bwt_char(r), wide.bwt_char(r), "r={r}");
            }
        }
    }

    #[test]
    fn mapped_blocks_match_owned_in_both_widths() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let text: Vec<u8> = (0..900).map(|_| rng.random_range(0..4u8)).collect();
        let (bwt, _) = build_bwt(&text);
        for width in [IndexWidth::W32, IndexWidth::W64] {
            let owned = OccOpt::build_with_width(&bwt, width);
            let bytes = owned.blocks_bytes().to_vec();
            assert_eq!(bytes.len(), owned.n_blocks() * 64);
            let owner: RegionOwner = Arc::new(AlignedBytes::from_slice(&bytes));
            let mapped = OccOpt::from_region(*owned.meta(), ByteRegion::whole(owner), width)
                .expect("aligned");
            assert!(mapped.is_mapped());
            assert_eq!(mapped.width(), width);
            assert_eq!(mapped.blocks_bytes(), &bytes[..]);
            let mut sink = NoopSink;
            for r in (-1..=text.len() as i64).step_by(3) {
                assert_eq!(owned.occ4(r, &mut sink), mapped.occ4(r, &mut sink));
            }
            for r in 0..=text.len() as i64 {
                if r != bwt.sentinel_row as i64 {
                    assert_eq!(owned.bwt_char(r), mapped.bwt_char(r));
                }
            }
            mapped.prefetch_row(5, &mut sink);
        }
        // a truncated region is rejected, not misread
        let owned = OccOpt::build(&bwt);
        let bytes = owned.blocks_bytes()[..owned.blocks_bytes().len() - 64].to_vec();
        let owner: RegionOwner = Arc::new(AlignedBytes::from_slice(&bytes));
        assert!(
            OccOpt::from_region(*owned.meta(), ByteRegion::whole(owner), IndexWidth::W32).is_err()
        );
    }

    #[test]
    fn opt_and_orig_agree() {
        use crate::occ_orig::OccOrig;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let text: Vec<u8> = (0..2000).map(|_| rng.random_range(0..4u8)).collect();
        let (bwt, _) = build_bwt(&text);
        let opt = OccOpt::build(&bwt);
        let orig = OccOrig::build(&bwt);
        let mut sink = NoopSink;
        for r in (-1..=2000i64).step_by(13) {
            assert_eq!(opt.occ4(r, &mut sink), orig.occ4(r, &mut sink), "r={r}");
        }
        for r in 0..=2000i64 {
            if r != bwt.sentinel_row as i64 {
                assert_eq!(opt.bwt_char(r), orig.bwt_char(r), "r={r}");
            }
        }
    }

    #[test]
    fn same_bucket_pair_touches_one_line() {
        let text: Vec<u8> = (0..256).map(|i| (i % 4) as u8).collect();
        let (bwt, _) = build_bwt(&text);
        for width in [IndexWidth::W32, IndexWidth::W64] {
            let occ = OccOpt::build_with_width(&bwt, width);
            let mut sink = CountingSink::new(CacheConfig::scaled_to(1 << 20));
            // rows 40 and 50 map into the same η=32 bucket only if their
            // stored prefixes share block 1; pick adjacent rows to be sure
            let (_, _) = occ.occ2x4(40, 41, &mut sink);
            assert_eq!(sink.counters.loads, 1);
            let (_, _) = occ.occ2x4(10, 200, &mut sink);
            assert_eq!(sink.counters.loads, 3);
        }
    }

    #[test]
    fn prefetch_rows_are_harmless_out_of_range() {
        let text: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let (bwt, _) = build_bwt(&text);
        let occ = OccOpt::build(&bwt);
        let mut sink = NoopSink;
        occ.prefetch_row(-1, &mut sink);
        occ.prefetch_row(64, &mut sink);
        occ.prefetch_row(1 << 40, &mut sink);
    }
}
