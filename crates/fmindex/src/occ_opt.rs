//! The paper's optimized occurrence layout (§4.4): η = 32, one byte per
//! base, one bucket per 64-byte cache line.
//!
//! Each bucket stores four `u32` cumulative counts (16 B), 32 bases at one
//! byte each (32 B), and 16 B of padding so buckets are cache-line
//! aligned — the paper's exact layout. In-bucket counting is
//! [`mem2_simd::counts4_in_prefix`] — a byte compare + popcount that
//! dispatches to the widest available vector backend (on AVX2 literally
//! the paper's `vpcmpeqb` + `vpmovmskb` + `popcnt` sequence, with an
//! SSE2/NEON/SWAR fallback), replacing the original's multi-word bit
//! manipulation.

use mem2_memsim::PerfSink;
use mem2_simd::counts4_in_prefix;
use mem2_suffix::Bwt;

use crate::occ::{BwtMeta, OccTable};

/// Bucket size (rows per block).
const ETA: i64 = 32;

/// One 64-byte occurrence bucket.
#[derive(Clone, Copy, Debug)]
#[repr(C, align(64))]
pub struct CpBlock {
    /// Cumulative per-base counts of all stored rows before this bucket.
    pub counts: [u32; 4],
    /// The bucket's 32 BWT bases, one byte each; padding rows are 0xFF.
    pub bases: [u8; 32],
    _pad: [u8; 16],
}

impl Default for CpBlock {
    fn default() -> Self {
        CpBlock::new([0; 4], [0xFF; 32])
    }
}

impl CpBlock {
    /// Assemble a block from its persisted payload (counts + bases; the
    /// padding carries no information).
    pub fn new(counts: [u32; 4], bases: [u8; 32]) -> Self {
        CpBlock {
            counts,
            bases,
            _pad: [0; 16],
        }
    }
}

/// Optimized-layout occurrence table.
#[derive(Clone, Debug)]
pub struct OccOpt {
    blocks: Vec<CpBlock>,
    meta: BwtMeta,
}

impl OccOpt {
    /// Build from a BWT. Asserts that per-block cumulative counts fit
    /// `u32` (the paper's 4-byte counts; holds to 4 G rows ≈ 2 Gbp).
    pub fn build(bwt: &Bwt) -> Self {
        let meta = BwtMeta::from_bwt(bwt);
        assert!(
            bwt.data.len() < u32::MAX as usize,
            "optimized occurrence table requires < 4G rows (paper uses 4-byte counts)"
        );
        let n = bwt.data.len();
        let n_blocks = n / ETA as usize + 1;
        let mut blocks = vec![CpBlock::default(); n_blocks];
        let mut running = [0u32; 4];
        for b in 0..n_blocks {
            blocks[b].counts = running;
            for j in 0..ETA as usize {
                let i = b * ETA as usize + j;
                if i >= n {
                    break;
                }
                let c = bwt.data[i];
                blocks[b].bases[j] = c;
                running[c as usize] += 1;
            }
        }
        OccOpt { blocks, meta }
    }

    /// Reassemble a table from persisted parts (the index bundle's v3
    /// CP-OCC section). The caller must supply blocks consistent with
    /// `meta` — `n_stored / 32 + 1` of them, with cumulative counts —
    /// as written by the bundle encoder.
    pub fn from_parts(meta: BwtMeta, blocks: Vec<CpBlock>) -> Self {
        debug_assert_eq!(blocks.len() as i64, meta.n_stored / ETA + 1);
        OccOpt { blocks, meta }
    }

    /// The checkpoint blocks (for persistence).
    pub fn blocks(&self) -> &[CpBlock] {
        &self.blocks
    }

    /// Rows per block (the persistence layer's consistency check).
    pub const fn rows_per_block() -> usize {
        ETA as usize
    }

    /// Count of each base among the first `m` stored rows.
    #[inline]
    fn stored_counts<P: PerfSink>(&self, m: i64, sink: &mut P) -> [i64; 4] {
        debug_assert!(m >= 0 && m <= self.meta.n_stored);
        let b = (m / ETA) as usize;
        let y = (m % ETA) as usize;
        let block = &self.blocks[b];
        sink.load(block as *const CpBlock as usize, 64);
        // instruction proxy: 4 header adds + per-base compare/popcnt (~3)
        sink.ops(4 + 4 * 3);
        let inb = counts4_in_prefix(&block.bases, y);
        let mut out = [0i64; 4];
        for c in 0..4 {
            out[c] = block.counts[c] as i64 + inb[c] as i64;
        }
        out
    }
}

impl OccTable for OccOpt {
    fn meta(&self) -> &BwtMeta {
        &self.meta
    }

    fn occ4<P: PerfSink>(&self, r: i64, sink: &mut P) -> [i64; 4] {
        self.stored_counts(self.meta.stored_prefix(r), sink)
    }

    fn occ2x4<P: PerfSink>(&self, r1: i64, r2: i64, sink: &mut P) -> ([i64; 4], [i64; 4]) {
        debug_assert!(r1 <= r2);
        let m1 = self.meta.stored_prefix(r1);
        let m2 = self.meta.stored_prefix(r2);
        if m1 / ETA == m2 / ETA {
            let a = self.stored_counts(m1, sink);
            let b = self.stored_counts(m2, &mut mem2_memsim::NoopSink);
            sink.ops(4 * 3);
            (a, b)
        } else {
            (self.stored_counts(m1, sink), self.stored_counts(m2, sink))
        }
    }

    fn bwt_char(&self, r: i64) -> u8 {
        let i = self.meta.stored_index(r);
        self.blocks[(i / ETA) as usize].bases[(i % ETA) as usize]
    }

    fn prefetch_row<P: PerfSink>(&self, r: i64, sink: &mut P) {
        if r < 0 || r > self.meta.n_stored {
            return;
        }
        let m = self.meta.stored_prefix(r);
        let block = &self.blocks[(m / ETA) as usize];
        mem2_simd::prefetch_read(block);
        sink.prefetch(block as *const CpBlock as usize);
    }

    fn bucket_size(&self) -> usize {
        ETA as usize
    }

    fn table_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<CpBlock>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem2_memsim::{CacheConfig, CountingSink, NoopSink};
    use mem2_suffix::build_bwt;

    #[test]
    fn block_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<CpBlock>(), 64);
        assert_eq!(std::mem::align_of::<CpBlock>(), 64);
    }

    #[test]
    fn occ4_matches_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let text: Vec<u8> = (0..777).map(|_| rng.random_range(0..4u8)).collect();
        let (bwt, _) = build_bwt(&text);
        let occ = OccOpt::build(&bwt);
        let mut sink = NoopSink;
        for r in -1..=text.len() as i64 {
            let mut naive = [0i64; 4];
            for row in 0..=r {
                if row >= 0 {
                    if let Some(c) = bwt.get(row as usize) {
                        naive[c as usize] += 1;
                    }
                }
            }
            assert_eq!(occ.occ4(r, &mut sink), naive, "r={r}");
        }
    }

    #[test]
    fn opt_and_orig_agree() {
        use crate::occ_orig::OccOrig;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let text: Vec<u8> = (0..2000).map(|_| rng.random_range(0..4u8)).collect();
        let (bwt, _) = build_bwt(&text);
        let opt = OccOpt::build(&bwt);
        let orig = OccOrig::build(&bwt);
        let mut sink = NoopSink;
        for r in (-1..=2000i64).step_by(13) {
            assert_eq!(opt.occ4(r, &mut sink), orig.occ4(r, &mut sink), "r={r}");
        }
        for r in 0..=2000i64 {
            if r != bwt.sentinel_row as i64 {
                assert_eq!(opt.bwt_char(r), orig.bwt_char(r), "r={r}");
            }
        }
    }

    #[test]
    fn same_bucket_pair_touches_one_line() {
        let text: Vec<u8> = (0..256).map(|i| (i % 4) as u8).collect();
        let (bwt, _) = build_bwt(&text);
        let occ = OccOpt::build(&bwt);
        let mut sink = CountingSink::new(CacheConfig::scaled_to(1 << 20));
        // rows 40 and 50 map into the same η=32 bucket only if their
        // stored prefixes share block 1; pick adjacent rows to be sure
        let (_, _) = occ.occ2x4(40, 41, &mut sink);
        assert_eq!(sink.counters.loads, 1);
        let (_, _) = occ.occ2x4(10, 200, &mut sink);
        assert_eq!(sink.counters.loads, 3);
    }

    #[test]
    fn prefetch_rows_are_harmless_out_of_range() {
        let text: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let (bwt, _) = build_bwt(&text);
        let occ = OccOpt::build(&bwt);
        let mut sink = NoopSink;
        occ.prefetch_row(-1, &mut sink);
        occ.prefetch_row(64, &mut sink);
        occ.prefetch_row(1 << 40, &mut sink);
    }
}
