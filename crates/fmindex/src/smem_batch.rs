//! Interleaved batched seeding — the latency-hiding superstage.
//!
//! [`smem::collect_intv`](crate::smem::collect_intv) walks one read's
//! FM-index state machine to completion: every occurrence query depends
//! on the previous one, so the software prefetch it issues (§4.3) lands
//! one serially-dependent step before its use and hides nothing — the
//! core still eats the full cache/DRAM round trip.
//!
//! This module reifies that implicit control flow into an explicit,
//! resumable [`SeedTask`] and advances a slab of `W` independent reads
//! **round-robin** ([`SmemScheduler`]): one step executes exactly one
//! occurrence query, then parks the machine at its *next* query point
//! with that bucket's prefetch already issued. By the time the rotation
//! returns — `W − 1` other reads' queries later — the line has landed,
//! so the demand load hits cache. This is bwa-mem2's batched-seeding
//! discipline: keep the memory-bound kernel saturated with independent
//! work between prefetch issue and use.
//!
//! Fidelity contract: for every read, the interval list handed to
//! `emit` is **identical** (same values, same order) to what
//! `collect_intv` produces — pinned by unit tests here and by
//! `tests/proptest_smem_batch.rs`. The machine implements the
//! `max_intv == 0` specialization of `bwt_smem1a` (the only form
//! `collect_intv` invokes) plus the full `bwt_seed_strategy1` third
//! round.

use mem2_memsim::PerfSink;

use crate::ext::{backward_ext4, backward_ext_rows, forward_ext4, forward_ext_rows, set_intv};
use crate::interval::BiInterval;
use crate::occ::OccTable;
use crate::smem::SmemOpts;

/// Default slab width: how many reads' state machines one worker
/// interleaves. 16 rotations of ~2 cache-line touches each put several
/// hundred cycles between a prefetch and its demand load — enough to
/// cover LLC and DRAM latency without overflowing the L1 with slab
/// state.
pub const DEFAULT_SEED_BATCH: usize = 16;

/// Micro-state of a [`SeedTask`] — the explicit program counter of
/// `collect_intv`. Query-point states (`FwdQuery`, `BackQuery`,
/// `StratQuery`) are where the machine parks between steps, with the
/// pending query's occurrence bucket(s) already prefetched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum St {
    /// Pass 1: scanning for the next seeding start at `x`.
    #[default]
    P1Scan,
    /// `smem1a` frame entry (`set_intv`, enter the forward loop).
    SmemInit,
    /// Pending forward extension of `ik` consuming `query[fwd_i]`.
    FwdQuery,
    /// Forward loop done: finalize `curr`, compute `ret`, swap.
    FwdEnd,
    /// Begin the backward level at query position `back_i`.
    BackLevel,
    /// Pending backward extension of `prev[back_j]` by base `back_c`.
    BackQuery,
    /// Backward level exhausted: swap buffers, descend or finish.
    BackLevelEnd,
    /// `smem1a` frame done: filter `mem1` into `out`, resume caller.
    SmemEnd,
    /// Pass 2: examining re-seed candidate `out[reseed_k]`.
    P2Scan,
    /// Pass 3: scanning for the next forward-only seeding start at `x`.
    P3Scan,
    /// Pending forward extension inside `seed_strategy1` at `strat_i`.
    StratQuery,
    /// All passes done: sort `out`, park in `Done`.
    Finish,
    /// Terminal state; `step` keeps returning `true`.
    Done,
}

/// One read's resumable seeding state machine: the whole of
/// `collect_intv` (SMEM pass, re-seeding pass, third-round pass, final
/// sort) flattened into stepwise form. Buffers are retained across
/// [`reset`](SeedTask::reset), so a pooled task allocates only during
/// its first read (the paper's reuse-across-batches discipline).
#[derive(Clone, Debug, Default)]
pub struct SeedTask {
    /// Accumulated intervals — `collect_intv`'s `out`, sorted by `info`
    /// once the machine reaches `Done`.
    pub out: Vec<BiInterval>,
    /// Per-frame SMEM output (`smem1a`'s `mem`).
    mem1: Vec<BiInterval>,
    curr: Vec<BiInterval>,
    prev: Vec<BiInterval>,
    st: St,
    /// Scan cursor for passes 1 and 3.
    x: usize,
    /// Pass-2 candidate index and its fixed upper bound.
    reseed_k: usize,
    old_n: usize,
    /// Does the live `smem1a` frame belong to pass 2 (else pass 1)?
    from_reseed: bool,
    /// `smem1a` frame: start position, minimum interval, live interval.
    sx: usize,
    min_intv: i64,
    ik: BiInterval,
    /// Forward-loop cursor.
    fwd_i: usize,
    /// `smem1a`'s return value (end of the longest forward match).
    ret: usize,
    /// Backward-loop cursors and the level's extension base.
    back_i: i64,
    back_j: usize,
    back_c: u8,
    /// `seed_strategy1` cursor.
    strat_i: usize,
}

impl SeedTask {
    /// Rewind to the start of pass 1, keeping buffer capacity.
    pub fn reset(&mut self) {
        self.out.clear();
        self.mem1.clear();
        self.curr.clear();
        self.prev.clear();
        self.st = St::P1Scan;
        self.x = 0;
    }

    /// Is the machine in its terminal state?
    pub fn is_done(&self) -> bool {
        self.st == St::Done
    }

    /// Prefetch the occurrence bucket(s) the pending query will touch.
    /// Forward extensions read the swapped interval's rows
    /// (`l − 1`, `l + s − 1`); backward extensions read `k − 1`,
    /// `k + s − 1` — see `backward_ext4`.
    fn prefetch_pending<O: OccTable, P: PerfSink>(&self, occ: &O, sink: &mut P) {
        match self.st {
            St::FwdQuery | St::StratQuery => {
                let (r1, r2) = forward_ext_rows(&self.ik);
                occ.prefetch_row(r1, sink);
                occ.prefetch_row(r2, sink);
            }
            St::BackQuery => {
                let (r1, r2) = backward_ext_rows(&self.prev[self.back_j]);
                occ.prefetch_row(r1, sink);
                occ.prefetch_row(r2, sink);
            }
            _ => {}
        }
    }

    /// Park at the next forward-loop iteration, or push the terminal
    /// interval and leave the loop (`fwd_i` must already be advanced).
    /// Both loop exits here — ambiguous base and end of query — push
    /// the live interval, exactly like `smem1a`.
    fn fwd_advance(&mut self, query: &[u8]) {
        if self.fwd_i < query.len() && query[self.fwd_i] < 4 {
            self.st = St::FwdQuery;
        } else {
            self.curr.push(self.ik);
            self.st = St::FwdEnd;
        }
    }

    /// `smem1a`'s backward keep-branch: record `prev[back_j]` as an SMEM
    /// unless a longer survivor exists at this level (`curr` non-empty)
    /// or it is contained in the previously reported match.
    fn back_keep(&mut self, p: BiInterval) {
        let contained = match self.mem1.last() {
            Some(last) => ((self.back_i + 1) as u64) >= (last.info >> 32),
            None => false,
        };
        if self.curr.is_empty() && !contained {
            self.ik = p;
            self.ik.info |= ((self.back_i + 1) as u64) << 32;
            self.mem1.push(self.ik);
        }
    }

    /// Park at the next `seed_strategy1` iteration, or fall back to the
    /// pass-3 scan (`strat_i` must already be advanced). An ambiguous
    /// base aborts the attempt and restarts the scan just past it.
    fn strat_advance(&mut self, query: &[u8]) {
        if self.strat_i < query.len() {
            if query[self.strat_i] < 4 {
                self.st = St::StratQuery;
            } else {
                self.x = self.strat_i + 1;
                self.st = St::P3Scan;
            }
        } else {
            self.x = query.len();
            self.st = St::P3Scan;
        }
    }

    /// Advance the machine: execute the pending occurrence query (if
    /// any), then run the read's control flow forward to its next query
    /// point, prefetch that query's bucket(s), and yield. Returns `true`
    /// when the read's seeding is complete (`out` is final).
    pub fn step<O: OccTable, P: PerfSink>(
        &mut self,
        occ: &O,
        query: &[u8],
        opts: &SmemOpts,
        prefetch: bool,
        sink: &mut P,
    ) -> bool {
        let len = query.len();
        let mut did_query = false;
        loop {
            match self.st {
                St::P1Scan => {
                    if self.x >= len {
                        self.old_n = self.out.len();
                        self.reseed_k = 0;
                        self.st = St::P2Scan;
                    } else if query[self.x] < 4 {
                        self.from_reseed = false;
                        self.min_intv = 1;
                        self.sx = self.x;
                        self.st = St::SmemInit;
                    } else {
                        self.x += 1;
                    }
                }
                St::SmemInit => {
                    debug_assert!(self.sx < len && query[self.sx] < 4);
                    self.mem1.clear();
                    self.curr.clear();
                    self.ik = set_intv(occ, query[self.sx]);
                    self.ik.info = self.sx as u64 + 1;
                    sink.ops(8);
                    self.fwd_i = self.sx + 1;
                    self.fwd_advance(query);
                }
                St::FwdQuery => {
                    if did_query {
                        if prefetch {
                            self.prefetch_pending(occ, sink);
                        }
                        return false;
                    }
                    let o = forward_ext4(occ, &self.ik, sink)[query[self.fwd_i] as usize];
                    did_query = true;
                    sink.ops(4);
                    if o.s != self.ik.s {
                        self.curr.push(self.ik);
                        if o.s < self.min_intv {
                            // too small to extend further: leave the
                            // forward loop without the end-of-query push
                            self.st = St::FwdEnd;
                            continue;
                        }
                    }
                    self.ik = o;
                    self.ik.info = self.fwd_i as u64 + 1;
                    self.fwd_i += 1;
                    self.fwd_advance(query);
                }
                St::FwdEnd => {
                    self.curr.reverse(); // longest matches first
                    self.ret = (self.curr[0].info & 0xFFFF_FFFF) as usize;
                    std::mem::swap(&mut self.curr, &mut self.prev);
                    self.back_i = self.sx as i64 - 1;
                    self.st = St::BackLevel;
                }
                St::BackLevel => {
                    let c: i32 = if self.back_i >= 0 && query[self.back_i as usize] < 4 {
                        query[self.back_i as usize] as i32
                    } else {
                        -1
                    };
                    self.curr.clear();
                    self.back_j = 0;
                    if c >= 0 {
                        self.back_c = c as u8;
                        self.st = St::BackQuery;
                    } else {
                        // no extension possible: every surviving interval
                        // takes the keep branch (ALU only), and the empty
                        // `curr` ends the backward pass
                        for j in 0..self.prev.len() {
                            let p = self.prev[j];
                            sink.ops(6);
                            self.back_keep(p);
                        }
                        self.st = St::SmemEnd;
                    }
                }
                St::BackQuery => {
                    if did_query {
                        if prefetch {
                            self.prefetch_pending(occ, sink);
                        }
                        return false;
                    }
                    let p = self.prev[self.back_j];
                    let ok = backward_ext4(occ, &p, sink)[self.back_c as usize];
                    did_query = true;
                    sink.ops(6);
                    if ok.s < self.min_intv {
                        self.back_keep(p);
                    } else {
                        let keep = match self.curr.last() {
                            Some(last) => ok.s != last.s,
                            None => true,
                        };
                        if keep {
                            let mut o = ok;
                            o.info = p.info;
                            self.curr.push(o);
                        }
                    }
                    self.back_j += 1;
                    if self.back_j >= self.prev.len() {
                        self.st = St::BackLevelEnd;
                    }
                }
                St::BackLevelEnd => {
                    if self.curr.is_empty() {
                        self.st = St::SmemEnd;
                    } else {
                        std::mem::swap(&mut self.curr, &mut self.prev);
                        if self.back_i < 0 {
                            self.st = St::SmemEnd;
                        } else {
                            self.back_i -= 1;
                            self.st = St::BackLevel;
                        }
                    }
                }
                St::SmemEnd => {
                    self.mem1.reverse(); // sort by match start
                    for p in &self.mem1 {
                        if p.len() >= opts.min_seed_len as usize {
                            self.out.push(*p);
                        }
                    }
                    if self.from_reseed {
                        self.reseed_k += 1;
                        self.st = St::P2Scan;
                    } else {
                        self.x = self.ret;
                        self.st = St::P1Scan;
                    }
                }
                St::P2Scan => {
                    if self.reseed_k >= self.old_n {
                        if opts.max_mem_intv > 0 {
                            self.x = 0;
                            self.st = St::P3Scan;
                        } else {
                            self.st = St::Finish;
                        }
                    } else {
                        let p = self.out[self.reseed_k];
                        let (start, end) = (p.start(), p.end());
                        if ((end - start) as i64) < opts.split_len() || p.s > opts.split_width {
                            self.reseed_k += 1;
                        } else {
                            self.from_reseed = true;
                            self.min_intv = p.s + 1;
                            self.sx = (start + end) >> 1;
                            self.st = St::SmemInit;
                        }
                    }
                }
                St::P3Scan => {
                    if self.x >= len {
                        self.st = St::Finish;
                    } else if query[self.x] < 4 {
                        self.sx = self.x;
                        self.ik = set_intv(occ, query[self.sx]);
                        sink.ops(8);
                        self.strat_i = self.sx + 1;
                        self.strat_advance(query);
                    } else {
                        self.x += 1;
                    }
                }
                St::StratQuery => {
                    if did_query {
                        if prefetch {
                            self.prefetch_pending(occ, sink);
                        }
                        return false;
                    }
                    let o = forward_ext4(occ, &self.ik, sink)[query[self.strat_i] as usize];
                    did_query = true;
                    sink.ops(4);
                    if o.s < opts.max_mem_intv
                        && (self.strat_i - self.sx) as i64 >= opts.min_seed_len as i64
                    {
                        if o.s > 0 {
                            let mut m = o;
                            m.info = BiInterval::pack_info(self.sx, self.strat_i + 1);
                            self.out.push(m);
                        }
                        self.x = self.strat_i + 1;
                        self.st = St::P3Scan;
                    } else {
                        self.ik = o;
                        self.strat_i += 1;
                        self.strat_advance(query);
                    }
                }
                St::Finish => {
                    self.out.sort_by_key(|p| p.info);
                    self.st = St::Done;
                    return true;
                }
                St::Done => return true,
            }
        }
    }
}

/// Round-robin scheduler over a slab of reads' [`SeedTask`]s — the
/// per-worker interleaved seeding superstage. Tasks are pooled and
/// reused across slabs.
#[derive(Debug, Default)]
pub struct SmemScheduler {
    tasks: Vec<SeedTask>,
}

impl SmemScheduler {
    /// Fresh scheduler (tasks are allocated lazily, up to the widest
    /// slab seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Seed every read of a slab, interleaving up to `width` state
    /// machines. One rotation advances each active read by exactly one
    /// occurrence query, so the prefetch issued when a read parks at a
    /// query point gets `width − 1` other queries of latency cover.
    ///
    /// `emit(i, out)` fires once per read, in completion order, with the
    /// read's final interval list — identical to `collect_intv`'s output
    /// for any `width` (callers typically `mem::swap` the Vec out).
    #[allow(clippy::too_many_arguments)]
    pub fn seed_slab<O: OccTable, P: PerfSink>(
        &mut self,
        occ: &O,
        opts: &SmemOpts,
        queries: &[&[u8]],
        width: usize,
        prefetch: bool,
        sink: &mut P,
        mut emit: impl FnMut(usize, &mut Vec<BiInterval>),
    ) {
        const IDLE: usize = usize::MAX;
        let width = width.max(1).min(queries.len());
        while self.tasks.len() < width {
            self.tasks.push(SeedTask::default());
        }
        // bind the first `width` reads to slots; refill on completion
        let mut slot_read: Vec<usize> = (0..width).collect();
        for task in &mut self.tasks[..width] {
            task.reset();
        }
        let mut next = width;
        let mut active = slot_read.len();
        while active > 0 {
            for s in 0..slot_read.len() {
                let r = slot_read[s];
                if r == IDLE {
                    continue;
                }
                let task = &mut self.tasks[s];
                if task.step(occ, queries[r], opts, prefetch, sink) {
                    emit(r, &mut task.out);
                    if next < queries.len() {
                        task.reset();
                        slot_read[s] = next;
                        next += 1;
                    } else {
                        slot_read[s] = IDLE;
                        active -= 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{BuildOpts, FmIndex};
    use crate::smem::{collect_intv, SmemAux};
    use mem2_memsim::NoopSink;
    use mem2_seqio::GenomeSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn reference_and_reads(seed: u64, n_reads: usize) -> (FmIndex, Vec<Vec<u8>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let genome = GenomeSpec {
            len: 12_000,
            repeat_families: 4,
            repeat_len: 150,
            repeat_copies: 4,
            ..GenomeSpec::default()
        };
        let reference = genome.generate_reference("g");
        let idx = FmIndex::build(&reference, &BuildOpts::default());
        let reads = (0..n_reads)
            .map(|_| {
                let rlen = rng.random_range(30..140usize);
                let start = rng.random_range(0..reference.len() - rlen);
                let mut q: Vec<u8> = (start..start + rlen)
                    .map(|i| reference.pac.get(i))
                    .collect();
                for c in q.iter_mut() {
                    if rng.random_bool(0.04) {
                        *c = rng.random_range(0..5u8); // mutations incl. N
                    }
                }
                q
            })
            .collect();
        (idx, reads)
    }

    fn per_read_intervals(
        idx: &FmIndex,
        opts: &SmemOpts,
        reads: &[Vec<u8>],
    ) -> Vec<Vec<BiInterval>> {
        let mut aux = SmemAux::default();
        let mut sink = NoopSink;
        reads
            .iter()
            .map(|q| {
                let mut out = Vec::new();
                collect_intv(idx.opt(), opts, q, &mut out, &mut aux, false, &mut sink);
                out
            })
            .collect()
    }

    fn interleaved_intervals(
        idx: &FmIndex,
        opts: &SmemOpts,
        reads: &[Vec<u8>],
        width: usize,
        prefetch: bool,
    ) -> Vec<Vec<BiInterval>> {
        let mut sched = SmemScheduler::new();
        let mut sink = NoopSink;
        let queries: Vec<&[u8]> = reads.iter().map(|q| q.as_slice()).collect();
        let mut outs = vec![Vec::new(); reads.len()];
        sched.seed_slab(
            idx.opt(),
            opts,
            &queries,
            width,
            prefetch,
            &mut sink,
            |i, out| std::mem::swap(&mut outs[i], out),
        );
        outs
    }

    #[test]
    fn interleaving_matches_per_read_at_every_width() {
        let (idx, reads) = reference_and_reads(0xBA7C, 37);
        let opts = SmemOpts::default();
        let expected = per_read_intervals(&idx, &opts, &reads);
        for width in [1usize, 2, 3, 8, 16, 64] {
            for prefetch in [false, true] {
                let got = interleaved_intervals(&idx, &opts, &reads, width, prefetch);
                assert_eq!(got, expected, "width={width} prefetch={prefetch}");
            }
        }
    }

    #[test]
    fn third_round_disabled_still_matches() {
        let (idx, reads) = reference_and_reads(0x5EED, 12);
        let opts = SmemOpts {
            max_mem_intv: 0,
            ..SmemOpts::default()
        };
        let expected = per_read_intervals(&idx, &opts, &reads);
        let got = interleaved_intervals(&idx, &opts, &reads, 4, true);
        assert_eq!(got, expected);
    }

    #[test]
    fn degenerate_reads_complete_without_queries() {
        let (idx, _) = reference_and_reads(0xD0, 1);
        let opts = SmemOpts::default();
        // empty read, all-N read, single-base read
        let reads: Vec<Vec<u8>> = vec![vec![], vec![4; 50], vec![2]];
        let expected = per_read_intervals(&idx, &opts, &reads);
        let got = interleaved_intervals(&idx, &opts, &reads, 3, true);
        assert_eq!(got, expected);
        assert!(got[0].is_empty() && got[1].is_empty());
    }

    #[test]
    fn scheduler_pool_is_reused_across_slabs() {
        let (idx, reads) = reference_and_reads(0xF00D, 20);
        let opts = SmemOpts::default();
        let expected = per_read_intervals(&idx, &opts, &reads);
        let mut sched = SmemScheduler::new();
        let mut sink = NoopSink;
        let mut outs = vec![Vec::new(); reads.len()];
        for (slab_i, slab) in reads.chunks(7).enumerate() {
            let queries: Vec<&[u8]> = slab.iter().map(|q| q.as_slice()).collect();
            let base = slab_i * 7;
            let outs_ref = &mut outs;
            sched.seed_slab(idx.opt(), &opts, &queries, 4, true, &mut sink, |i, out| {
                std::mem::swap(&mut outs_ref[base + i], out)
            });
        }
        assert_eq!(outs, expected);
        assert_eq!(sched.tasks.len(), 4, "pool sized to the widest slab");
    }
}
