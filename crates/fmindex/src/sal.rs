//! Suffix-array lookup (SAL), both ways.
//!
//! * [`SampledSa`] — the original BWA-MEM scheme: keep every q-th SA row
//!   and resolve other rows by LF-walking to the nearest sample. Each step
//!   costs an occurrence query, which is why the paper measures ~5000
//!   instructions per lookup.
//! * [`FlatSa`] — the paper's optimization (§4.5): store the whole SA and
//!   make the lookup a single array read (Equation 1, `j = S[i]`).
//!
//! Both tables are generic over the position width chosen at index time
//! ([`IndexWidth`]): 4-byte entries for references whose doubled text
//! fits `u32` (half the paper's 8-byte footprint), 8-byte entries for
//! human-genome-scale references past that ceiling. The flat table can
//! additionally *borrow* its entries from a shared mapped region — the
//! zero-copy path when a v4 bundle is `mmap`ed — with identical lookup
//! results and access pattern.

use mem2_memsim::PerfSink;
use mem2_seqio::ByteRegion;
use mem2_suffix::{IndexWidth, SaVec};

use crate::occ::OccTable;

/// Width- and ownership-dispatched entry storage for [`FlatSa`].
#[derive(Clone, Debug)]
enum SaStore {
    OwnedU32(Vec<u32>),
    OwnedU64(Vec<u64>),
    /// Validated at construction: aligned, little-endian, length % 4 == 0.
    Mapped32(ByteRegion),
    /// Validated at construction: aligned, little-endian, length % 8 == 0.
    Mapped64(ByteRegion),
}

/// Uncompressed suffix array: one entry per conceptual row, 4 or 8 bytes
/// each.
///
/// The paper stores 8-byte entries (48 GB for human genome); references
/// whose doubled text fits `u32` use 4-byte entries instead — an
/// engineering improvement that does not change the access pattern (one
/// load per lookup). Either layout can live in owned memory or borrow a
/// `mmap`ed bundle section.
#[derive(Clone, Debug)]
pub struct FlatSa {
    store: SaStore,
}

/// Sliding software-prefetch distance for [`FlatSa::lookup_batch`]:
/// the lookup issued now prefetches the row this many lookups ahead, so
/// by the time the cursor gets there the line has landed. 16 independent
/// word-sized loads comfortably cover DRAM latency without washing out L1.
pub const SAL_PREFETCH_DIST: usize = 16;

#[inline]
fn mapped_u32(region: &ByteRegion) -> &[u32] {
    region.typed::<u32>().expect("validated at construction")
}

#[inline]
fn mapped_u64(region: &ByteRegion) -> &[u64] {
    region.typed::<u64>().expect("validated at construction")
}

impl FlatSa {
    /// Keep the full suffix array. Takes ownership — building from the
    /// suffix sort's output must not double peak memory at index time.
    /// Accepts `Vec<u32>`, `Vec<u64>` or a [`SaVec`] directly.
    pub fn build(sa: impl Into<SaVec>) -> Self {
        let store = match sa.into() {
            SaVec::U32(v) => SaStore::OwnedU32(v),
            SaVec::U64(v) => SaStore::OwnedU64(v),
        };
        FlatSa { store }
    }

    /// Borrow the entries from a shared loaded region (the `mmap`
    /// zero-copy path). Fails when the region cannot be reinterpreted in
    /// place (misaligned, wrong size, or a big-endian host) — callers
    /// fall back to decoding into owned storage.
    pub fn from_region(region: ByteRegion, width: IndexWidth) -> Result<Self, &'static str> {
        let store = match width {
            IndexWidth::W32 => {
                region
                    .typed::<u32>()
                    .ok_or("flat-SA region not viewable as u32 entries in place")?;
                SaStore::Mapped32(region)
            }
            IndexWidth::W64 => {
                region
                    .typed::<u64>()
                    .ok_or("flat-SA region not viewable as u64 entries in place")?;
                SaStore::Mapped64(region)
            }
        };
        Ok(FlatSa { store })
    }

    /// Entry layout.
    pub fn width(&self) -> IndexWidth {
        match &self.store {
            SaStore::OwnedU32(_) | SaStore::Mapped32(_) => IndexWidth::W32,
            SaStore::OwnedU64(_) | SaStore::Mapped64(_) => IndexWidth::W64,
        }
    }

    /// True when the entries borrow a mapped region instead of owning
    /// their memory.
    pub fn is_mapped(&self) -> bool {
        matches!(&self.store, SaStore::Mapped32(_) | SaStore::Mapped64(_))
    }

    /// Number of entries (conceptual rows).
    pub fn len(&self) -> usize {
        match &self.store {
            SaStore::OwnedU32(v) => v.len(),
            SaStore::OwnedU64(v) => v.len(),
            SaStore::Mapped32(m) => mapped_u32(m).len(),
            SaStore::Mapped64(m) => mapped_u64(m).len(),
        }
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `S[r]` — a single lookup.
    #[inline]
    pub fn lookup<P: PerfSink>(&self, r: i64, sink: &mut P) -> i64 {
        sink.ops(2);
        match &self.store {
            SaStore::OwnedU32(v) => {
                let x = &v[r as usize];
                sink.load(x as *const u32 as usize, 4);
                *x as i64
            }
            SaStore::OwnedU64(v) => {
                let x = &v[r as usize];
                sink.load(x as *const u64 as usize, 8);
                *x as i64
            }
            SaStore::Mapped32(m) => {
                let x = &mapped_u32(m)[r as usize];
                sink.load(x as *const u32 as usize, 4);
                *x as i64
            }
            SaStore::Mapped64(m) => {
                let x = &mapped_u64(m)[r as usize];
                sink.load(x as *const u64 as usize, 8);
                *x as i64
            }
        }
    }

    /// Software-prefetch the cache line holding `S[r]`. Out-of-range
    /// rows are ignored (prefetch is advisory).
    #[inline]
    pub fn prefetch<P: PerfSink>(&self, r: i64, sink: &mut P) {
        if r < 0 || r as usize >= self.len() {
            return;
        }
        let addr = match &self.store {
            SaStore::OwnedU32(v) => {
                let x = &v[r as usize];
                mem2_simd::prefetch_read(x);
                x as *const u32 as usize
            }
            SaStore::OwnedU64(v) => {
                let x = &v[r as usize];
                mem2_simd::prefetch_read(x);
                x as *const u64 as usize
            }
            SaStore::Mapped32(m) => {
                let x = &mapped_u32(m)[r as usize];
                mem2_simd::prefetch_read(x);
                x as *const u32 as usize
            }
            SaStore::Mapped64(m) => {
                let x = &mapped_u64(m)[r as usize];
                mem2_simd::prefetch_read(x);
                x as *const u64 as usize
            }
        };
        sink.prefetch(addr);
    }

    /// Resolve a whole row list through a sliding prefetch window of
    /// `dist` lookups (§4.3 applied to SAL): row `i + dist` is
    /// prefetched before row `i` is read, so every demand load has
    /// `dist` independent loads of latency cover. `out[i]` corresponds
    /// to `rows[i]`; results are identical to calling [`lookup`] per
    /// row, in order.
    ///
    /// [`lookup`]: FlatSa::lookup
    pub fn lookup_batch<P: PerfSink>(
        &self,
        rows: &[i64],
        out: &mut Vec<i64>,
        dist: usize,
        sink: &mut P,
    ) {
        out.clear();
        out.reserve(rows.len());
        let dist = dist.max(1);
        for &r in rows.iter().take(dist) {
            self.prefetch(r, sink);
        }
        for (i, &r) in rows.iter().enumerate() {
            if let Some(&ahead) = rows.get(i + dist) {
                self.prefetch(ahead, sink);
            }
            out.push(self.lookup(r, sink));
        }
    }

    /// Table size in bytes.
    pub fn table_bytes(&self) -> usize {
        self.len() * self.width().bytes()
    }

    /// The raw narrow entries, when this is the u32 layout (v3
    /// persistence writes these).
    pub fn as_u32(&self) -> Option<&[u32]> {
        match &self.store {
            SaStore::OwnedU32(v) => Some(v),
            SaStore::Mapped32(m) => Some(mapped_u32(m)),
            _ => None,
        }
    }

    /// The raw wide entries, when this is the u64 layout.
    pub fn as_u64(&self) -> Option<&[u64]> {
        match &self.store {
            SaStore::OwnedU64(v) => Some(v),
            SaStore::Mapped64(m) => Some(mapped_u64(m)),
            _ => None,
        }
    }

    /// Copy the entries into an owned width-dispatched array (the
    /// rebuild path for profiles that need components a mapped bundle
    /// does not carry).
    pub fn to_savec(&self) -> SaVec {
        match &self.store {
            SaStore::OwnedU32(v) => SaVec::U32(v.clone()),
            SaStore::OwnedU64(v) => SaVec::U64(v.clone()),
            SaStore::Mapped32(m) => SaVec::U32(mapped_u32(m).to_vec()),
            SaStore::Mapped64(m) => SaVec::U64(mapped_u64(m).to_vec()),
        }
    }
}

/// Sampled suffix array resolved by LF-walking (the original scheme).
/// Samples use the same entry width as the suffix array they came from.
#[derive(Clone, Debug)]
pub struct SampledSa {
    /// Sampling interval (bwa default 32; the paper quotes 128).
    q: usize,
    samples: SaVec,
}

impl SampledSa {
    /// Keep `sa[r]` for every `r` divisible by `q`.
    pub fn build(sa: &SaVec, q: usize) -> Self {
        assert!(q >= 1);
        let samples = match sa {
            SaVec::U32(v) => SaVec::U32(v.iter().copied().step_by(q).collect()),
            SaVec::U64(v) => SaVec::U64(v.iter().copied().step_by(q).collect()),
        };
        SampledSa { q, samples }
    }

    /// Sampling interval.
    pub fn interval(&self) -> usize {
        self.q
    }

    /// Entry layout of the samples.
    pub fn width(&self) -> IndexWidth {
        self.samples.width()
    }

    /// Sampled value at sample index `i`, recording the load.
    #[inline]
    fn sample<P: PerfSink>(&self, i: usize, sink: &mut P) -> i64 {
        match &self.samples {
            SaVec::U32(v) => {
                let x = &v[i];
                sink.load(x as *const u32 as usize, 4);
                *x as i64
            }
            SaVec::U64(v) => {
                let x = &v[i];
                sink.load(x as *const u64 as usize, 8);
                *x as i64
            }
        }
    }

    /// `S[r]` via LF-walk: step to the previous text position until a
    /// sampled row (or the `SA = 0` row) is reached, then add back the
    /// number of steps.
    pub fn lookup<O: OccTable, P: PerfSink>(&self, occ: &O, r: i64, sink: &mut P) -> i64 {
        let meta = *occ.meta();
        let mut r = r;
        let mut t = 0i64;
        loop {
            if r % self.q as i64 == 0 {
                sink.ops(4);
                return self.sample((r / self.q as i64) as usize, sink) + t;
            }
            if r == meta.sentinel_row {
                // this row's suffix starts at text position 0
                return t;
            }
            let c = occ.bwt_char(r);
            sink.ops(8); // LF bookkeeping proxy
            r = meta.c_before[c as usize] + occ.occ(c, r - 1, sink);
            t += 1;
        }
    }

    /// Table size in bytes.
    pub fn table_bytes(&self) -> usize {
        self.samples.len() * self.samples.width().bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occ_opt::OccOpt;
    use crate::occ_orig::OccOrig;
    use mem2_memsim::NoopSink;
    use mem2_seqio::{AlignedBytes, RegionOwner};
    use mem2_suffix::{build_bwt, suffix_array, suffix_array_u64};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn random_text(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0..4u8)).collect()
    }

    #[test]
    fn flat_lookup_is_identity_in_both_widths() {
        let text = random_text(300, 1);
        let sa = suffix_array(&text);
        let narrow = FlatSa::build(sa.clone());
        let wide = FlatSa::build(suffix_array_u64(&text));
        assert_eq!(narrow.width(), IndexWidth::W32);
        assert_eq!(wide.width(), IndexWidth::W64);
        assert!(!narrow.is_mapped() && !wide.is_mapped());
        assert_eq!(wide.table_bytes(), 2 * narrow.table_bytes());
        let mut sink = NoopSink;
        for r in 0..sa.len() as i64 {
            assert_eq!(narrow.lookup(r, &mut sink), sa[r as usize] as i64);
            assert_eq!(wide.lookup(r, &mut sink), sa[r as usize] as i64);
        }
    }

    #[test]
    fn mapped_flat_sa_matches_owned() {
        let text = random_text(400, 21);
        let sa = suffix_array(&text);
        let owned = FlatSa::build(sa.clone());
        // little-endian u32 entries in a page-aligned buffer, as a v4
        // bundle section would hold them
        let bytes: Vec<u8> = sa.iter().flat_map(|v| v.to_le_bytes()).collect();
        let owner: RegionOwner = Arc::new(AlignedBytes::from_slice(&bytes));
        let region = ByteRegion::whole(owner);
        let mapped = FlatSa::from_region(region.clone(), IndexWidth::W32).expect("aligned");
        assert!(mapped.is_mapped());
        assert_eq!(mapped.len(), owned.len());
        assert_eq!(mapped.as_u32(), owned.as_u32());
        let mut sink = NoopSink;
        for r in 0..sa.len() as i64 {
            assert_eq!(mapped.lookup(r, &mut sink), owned.lookup(r, &mut sink));
        }
        assert_eq!(mapped.to_savec(), SaVec::U32(sa));
        // the wide interpretation of a 4-byte-entry region is rejected
        // when sizes do not line up
        if !bytes.len().is_multiple_of(8) {
            assert!(FlatSa::from_region(region, IndexWidth::W64).is_err());
        }
    }

    #[test]
    fn batched_lookup_matches_per_row() {
        let text = random_text(600, 9);
        let sa = suffix_array(&text);
        for flat in [
            FlatSa::build(sa.clone()),
            FlatSa::build(sa.iter().map(|&v| v as u64).collect::<Vec<u64>>()),
        ] {
            let mut rng = StdRng::seed_from_u64(10);
            let rows: Vec<i64> = (0..500)
                .map(|_| rng.random_range(0..sa.len() as i64))
                .collect();
            let mut sink = NoopSink;
            let expected: Vec<i64> = rows.iter().map(|&r| flat.lookup(r, &mut sink)).collect();
            for dist in [1usize, 4, 16, 64, 1000] {
                let mut got = Vec::new();
                flat.lookup_batch(&rows, &mut got, dist, &mut sink);
                assert_eq!(got, expected, "dist={dist} width={}", flat.width());
            }
            // empty row lists are fine
            let mut got = Vec::new();
            flat.lookup_batch(&[], &mut got, SAL_PREFETCH_DIST, &mut sink);
            assert!(got.is_empty());
            // prefetching out-of-range rows is harmless
            flat.prefetch(-1, &mut sink);
            flat.prefetch(sa.len() as i64 + 5, &mut sink);
        }
    }

    #[test]
    fn sampled_lookup_matches_flat_for_all_rows() {
        let text = random_text(500, 2);
        let (bwt, sa) = build_bwt(&text);
        let occ = OccOpt::build(&bwt);
        let mut sink = NoopSink;
        for q in [1usize, 2, 8, 32, 128] {
            for samples in [
                SaVec::U32(sa.clone()),
                SaVec::U64(sa.iter().map(|&v| v as u64).collect()),
            ] {
                let sampled = SampledSa::build(&samples, q);
                assert_eq!(sampled.width(), samples.width());
                for r in 0..sa.len() as i64 {
                    assert_eq!(
                        sampled.lookup(&occ, r, &mut sink),
                        sa[r as usize] as i64,
                        "q={q} r={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn sampled_lookup_agrees_across_occ_layouts() {
        let text = random_text(700, 3);
        let (bwt, sa) = build_bwt(&text);
        let opt = OccOpt::build(&bwt);
        let orig = OccOrig::build(&bwt);
        let sampled = SampledSa::build(&SaVec::U32(sa.clone()), 32);
        let mut sink = NoopSink;
        for r in (0..sa.len() as i64).step_by(7) {
            assert_eq!(
                sampled.lookup(&opt, r, &mut sink),
                sampled.lookup(&orig, r, &mut sink)
            );
        }
    }

    #[test]
    fn sampled_is_q_times_smaller() {
        let text = random_text(4096, 4);
        let sa = suffix_array(&text);
        let sampled = SampledSa::build(&SaVec::U32(sa.clone()), 32);
        let flat = FlatSa::build(sa);
        assert!(flat.table_bytes() > 30 * sampled.table_bytes());
        assert_eq!(sampled.interval(), 32);
    }
}
