//! Suffix-array lookup (SAL), both ways.
//!
//! * [`SampledSa`] — the original BWA-MEM scheme: keep every q-th SA row
//!   and resolve other rows by LF-walking to the nearest sample. Each step
//!   costs an occurrence query, which is why the paper measures ~5000
//!   instructions per lookup.
//! * [`FlatSa`] — the paper's optimization (§4.5): store the whole SA and
//!   make the lookup a single array read (Equation 1, `j = S[i]`).

use mem2_memsim::PerfSink;

use crate::occ::OccTable;

/// Uncompressed suffix array: one `u32` per conceptual row.
///
/// The paper stores 8-byte entries (48 GB for human genome); we use 4-byte
/// entries, which hold for references up to 2 Gbp — an engineering
/// improvement that does not change the access pattern (one load per
/// lookup).
#[derive(Clone, Debug)]
pub struct FlatSa {
    vals: Vec<u32>,
}

/// Sliding software-prefetch distance for [`FlatSa::lookup_batch`]:
/// the lookup issued now prefetches the row this many lookups ahead, so
/// by the time the cursor gets there the line has landed. 16 independent
/// 4-byte loads comfortably cover DRAM latency without washing out L1.
pub const SAL_PREFETCH_DIST: usize = 16;

impl FlatSa {
    /// Keep the full suffix array. Takes ownership — building from the
    /// suffix sort's output must not double peak memory at index time.
    pub fn build(sa: Vec<u32>) -> Self {
        FlatSa { vals: sa }
    }

    /// `S[r]` — a single lookup.
    #[inline]
    pub fn lookup<P: PerfSink>(&self, r: i64, sink: &mut P) -> i64 {
        let v = &self.vals[r as usize];
        sink.load(v as *const u32 as usize, 4);
        sink.ops(2);
        *v as i64
    }

    /// Software-prefetch the cache line holding `S[r]`. Out-of-range
    /// rows are ignored (prefetch is advisory).
    #[inline]
    pub fn prefetch<P: PerfSink>(&self, r: i64, sink: &mut P) {
        if r < 0 || r as usize >= self.vals.len() {
            return;
        }
        let v = &self.vals[r as usize];
        mem2_simd::prefetch_read(v);
        sink.prefetch(v as *const u32 as usize);
    }

    /// Resolve a whole row list through a sliding prefetch window of
    /// `dist` lookups (§4.3 applied to SAL): row `i + dist` is
    /// prefetched before row `i` is read, so every demand load has
    /// `dist` independent loads of latency cover. `out[i]` corresponds
    /// to `rows[i]`; results are identical to calling [`lookup`] per
    /// row, in order.
    ///
    /// [`lookup`]: FlatSa::lookup
    pub fn lookup_batch<P: PerfSink>(
        &self,
        rows: &[i64],
        out: &mut Vec<i64>,
        dist: usize,
        sink: &mut P,
    ) {
        out.clear();
        out.reserve(rows.len());
        let dist = dist.max(1);
        for &r in rows.iter().take(dist) {
            self.prefetch(r, sink);
        }
        for (i, &r) in rows.iter().enumerate() {
            if let Some(&ahead) = rows.get(i + dist) {
                self.prefetch(ahead, sink);
            }
            out.push(self.lookup(r, sink));
        }
    }

    /// Table size in bytes.
    pub fn table_bytes(&self) -> usize {
        self.vals.len() * 4
    }

    /// The raw suffix-array values (for persistence).
    pub fn values(&self) -> &[u32] {
        &self.vals
    }
}

/// Sampled suffix array resolved by LF-walking (the original scheme).
#[derive(Clone, Debug)]
pub struct SampledSa {
    /// Sampling interval (bwa default 32; the paper quotes 128).
    q: usize,
    samples: Vec<u32>,
}

impl SampledSa {
    /// Keep `sa[r]` for every `r` divisible by `q`.
    pub fn build(sa: &[u32], q: usize) -> Self {
        assert!(q >= 1);
        SampledSa {
            q,
            samples: sa.iter().copied().step_by(q).collect(),
        }
    }

    /// Sampling interval.
    pub fn interval(&self) -> usize {
        self.q
    }

    /// `S[r]` via LF-walk: step to the previous text position until a
    /// sampled row (or the `SA = 0` row) is reached, then add back the
    /// number of steps.
    pub fn lookup<O: OccTable, P: PerfSink>(&self, occ: &O, r: i64, sink: &mut P) -> i64 {
        let meta = *occ.meta();
        let mut r = r;
        let mut t = 0i64;
        loop {
            if r % self.q as i64 == 0 {
                let v = &self.samples[(r / self.q as i64) as usize];
                sink.load(v as *const u32 as usize, 4);
                sink.ops(4);
                return *v as i64 + t;
            }
            if r == meta.sentinel_row {
                // this row's suffix starts at text position 0
                return t;
            }
            let c = occ.bwt_char(r);
            sink.ops(8); // LF bookkeeping proxy
            r = meta.c_before[c as usize] + occ.occ(c, r - 1, sink);
            t += 1;
        }
    }

    /// Table size in bytes.
    pub fn table_bytes(&self) -> usize {
        self.samples.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occ_opt::OccOpt;
    use crate::occ_orig::OccOrig;
    use mem2_memsim::NoopSink;
    use mem2_suffix::{build_bwt, suffix_array};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_text(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0..4u8)).collect()
    }

    #[test]
    fn flat_lookup_is_identity() {
        let text = random_text(300, 1);
        let sa = suffix_array(&text);
        let flat = FlatSa::build(sa.clone());
        let mut sink = NoopSink;
        for r in 0..sa.len() as i64 {
            assert_eq!(flat.lookup(r, &mut sink), sa[r as usize] as i64);
        }
    }

    #[test]
    fn batched_lookup_matches_per_row() {
        let text = random_text(600, 9);
        let sa = suffix_array(&text);
        let flat = FlatSa::build(sa.clone());
        let mut rng = StdRng::seed_from_u64(10);
        let rows: Vec<i64> = (0..500)
            .map(|_| rng.random_range(0..sa.len() as i64))
            .collect();
        let mut sink = NoopSink;
        let expected: Vec<i64> = rows.iter().map(|&r| flat.lookup(r, &mut sink)).collect();
        for dist in [1usize, 4, 16, 64, 1000] {
            let mut got = Vec::new();
            flat.lookup_batch(&rows, &mut got, dist, &mut sink);
            assert_eq!(got, expected, "dist={dist}");
        }
        // empty row lists are fine
        let mut got = Vec::new();
        flat.lookup_batch(&[], &mut got, SAL_PREFETCH_DIST, &mut sink);
        assert!(got.is_empty());
        // prefetching out-of-range rows is harmless
        flat.prefetch(-1, &mut sink);
        flat.prefetch(sa.len() as i64 + 5, &mut sink);
    }

    #[test]
    fn sampled_lookup_matches_flat_for_all_rows() {
        let text = random_text(500, 2);
        let (bwt, sa) = build_bwt(&text);
        let occ = OccOpt::build(&bwt);
        let mut sink = NoopSink;
        for q in [1usize, 2, 8, 32, 128] {
            let sampled = SampledSa::build(&sa, q);
            for r in 0..sa.len() as i64 {
                assert_eq!(
                    sampled.lookup(&occ, r, &mut sink),
                    sa[r as usize] as i64,
                    "q={q} r={r}"
                );
            }
        }
    }

    #[test]
    fn sampled_lookup_agrees_across_occ_layouts() {
        let text = random_text(700, 3);
        let (bwt, sa) = build_bwt(&text);
        let opt = OccOpt::build(&bwt);
        let orig = OccOrig::build(&bwt);
        let sampled = SampledSa::build(&sa, 32);
        let mut sink = NoopSink;
        for r in (0..sa.len() as i64).step_by(7) {
            assert_eq!(
                sampled.lookup(&opt, r, &mut sink),
                sampled.lookup(&orig, r, &mut sink)
            );
        }
    }

    #[test]
    fn sampled_is_q_times_smaller() {
        let text = random_text(4096, 4);
        let sa = suffix_array(&text);
        let sampled = SampledSa::build(&sa, 32);
        let flat = FlatSa::build(sa);
        assert!(flat.table_bytes() > 30 * sampled.table_bytes());
        assert_eq!(sampled.interval(), 32);
    }
}
