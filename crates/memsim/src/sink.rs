//! The `PerfSink` instrumentation trait and its two implementations.

use crate::hierarchy::{CacheConfig, CacheHierarchy, LatencyModel, ServedBy};

/// Instrumentation callbacks invoked by the kernels in `mem2-fmindex`.
///
/// Kernels are generic over `P: PerfSink`; with [`NoopSink`] the calls
/// compile to nothing.
pub trait PerfSink {
    /// A memory read of `bytes` bytes at `addr` (a real pointer value, so
    /// the cache model sees true conflict behaviour).
    fn load(&mut self, addr: usize, bytes: usize);
    /// A memory write.
    fn store(&mut self, addr: usize, bytes: usize);
    /// `n` abstract ALU/control operations (the instruction-count proxy).
    fn ops(&mut self, n: u64);
    /// A software prefetch of the line containing `addr`.
    fn prefetch(&mut self, addr: usize);
}

/// Zero-cost sink for timing runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl PerfSink for NoopSink {
    #[inline(always)]
    fn load(&mut self, _addr: usize, _bytes: usize) {}
    #[inline(always)]
    fn store(&mut self, _addr: usize, _bytes: usize) {}
    #[inline(always)]
    fn ops(&mut self, _n: u64) {}
    #[inline(always)]
    fn prefetch(&mut self, _addr: usize) {}
}

/// Counter totals collected by a [`CountingSink`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Abstract operation count (instruction proxy).
    pub instructions: u64,
    /// Demand loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Loads served per level: [L1, L2, LLC, memory].
    pub served: [u64; 4],
    /// Software prefetches issued.
    pub prefetches: u64,
}

impl Counters {
    /// LLC misses = loads served by memory.
    pub fn llc_misses(&self) -> u64 {
        self.served[ServedBy::Memory as usize]
    }

    /// Average demand-load latency in cycles under `lat`.
    pub fn avg_load_latency(&self, lat: &LatencyModel) -> f64 {
        let total = self.total_load_latency(lat);
        if self.loads == 0 {
            0.0
        } else {
            total as f64 / self.loads as f64
        }
    }

    /// Sum of demand-load latencies in cycles.
    pub fn total_load_latency(&self, lat: &LatencyModel) -> u64 {
        self.served[0] * lat.l1
            + self.served[1] * lat.l2
            + self.served[2] * lat.llc
            + self.served[3] * lat.memory
    }

    /// Crude cycle model: instructions issue at `ipc_base`, and every
    /// cycle a load spends beyond an L1 hit stalls the pipeline with a
    /// fixed overlap factor (0.5 — out-of-order cores hide about half of
    /// the miss latency in pointer-chasing code).
    pub fn cycles(&self, lat: &LatencyModel, ipc_base: f64) -> u64 {
        let issue = (self.instructions as f64 / ipc_base) as u64;
        let beyond_l1 = self
            .total_load_latency(lat)
            .saturating_sub(self.loads * lat.l1);
        issue + beyond_l1 / 2
    }
}

/// Counting sink: tallies everything and replays loads/stores through a
/// cache hierarchy model.
#[derive(Clone, Debug)]
pub struct CountingSink {
    /// Collected totals.
    pub counters: Counters,
    /// The modeled hierarchy.
    pub hierarchy: CacheHierarchy,
    /// Latency model used by the convenience accessors.
    pub latency: LatencyModel,
}

impl CountingSink {
    /// New sink over the given hierarchy configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        CountingSink {
            counters: Counters::default(),
            hierarchy: CacheHierarchy::new(cfg),
            latency: LatencyModel::default(),
        }
    }

    /// Average demand-load latency under this sink's latency model.
    pub fn avg_load_latency(&self) -> f64 {
        self.counters.avg_load_latency(&self.latency)
    }
}

impl PerfSink for CountingSink {
    fn load(&mut self, addr: usize, bytes: usize) {
        let (n, served) = self.hierarchy.access_range(addr, bytes);
        self.counters.loads += n;
        for i in 0..4 {
            self.counters.served[i] += served[i];
        }
    }

    fn store(&mut self, addr: usize, bytes: usize) {
        // stores allocate in cache but we do not track store latency
        let (n, _) = self.hierarchy.access_range(addr, bytes);
        self.counters.stores += n;
    }

    fn ops(&mut self, n: u64) {
        self.counters.instructions += n;
    }

    fn prefetch(&mut self, addr: usize) {
        self.counters.prefetches += 1;
        self.hierarchy.prefetch(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoopSink>(), 0);
    }

    #[test]
    fn counting_sink_tallies() {
        let mut s = CountingSink::new(CacheConfig::scaled_to(1 << 24));
        s.ops(10);
        s.load(0x1000, 8);
        s.load(0x1000, 8);
        s.store(0x2000, 8);
        assert_eq!(s.counters.instructions, 10);
        assert_eq!(s.counters.loads, 2);
        assert_eq!(s.counters.stores, 1);
        assert_eq!(s.counters.llc_misses(), 1); // second load hit L1
        assert_eq!(s.counters.served[0], 1);
    }

    #[test]
    fn prefetch_reduces_demand_misses() {
        let cfg = CacheConfig::scaled_to(1 << 24);
        let addrs: Vec<usize> = (0..1000).map(|i| 0x10_0000 + i * 4096).collect();

        let mut cold = CountingSink::new(cfg);
        for &a in &addrs {
            cold.load(a, 8);
        }

        let mut warmed = CountingSink::new(cfg);
        for &a in &addrs {
            warmed.prefetch(a);
            warmed.load(a, 8);
        }
        assert!(cold.counters.llc_misses() > 0);
        assert_eq!(warmed.counters.llc_misses(), 0);
        assert!(warmed.avg_load_latency() < cold.avg_load_latency());
    }

    #[test]
    fn straddling_load_counts_two_accesses() {
        let mut s = CountingSink::new(CacheConfig::scaled_to(1 << 24));
        s.load(0x103C, 8); // crosses the 0x1040 line boundary
        assert_eq!(s.counters.loads, 2);
    }

    #[test]
    fn cycle_model_is_monotone_in_misses() {
        let lat = LatencyModel::default();
        let fast = Counters {
            instructions: 1000,
            loads: 100,
            served: [100, 0, 0, 0],
            ..Default::default()
        };
        let slow = Counters {
            instructions: 1000,
            loads: 100,
            served: [0, 0, 0, 100],
            ..Default::default()
        };
        assert!(slow.cycles(&lat, 2.0) > fast.cycles(&lat, 2.0));
        assert_eq!(fast.avg_load_latency(&lat), lat.l1 as f64);
        assert_eq!(slow.avg_load_latency(&lat), lat.memory as f64);
    }
}
