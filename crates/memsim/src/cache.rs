//! A single set-associative LRU cache level.

/// Result of probing a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// Line present.
    Hit,
    /// Line absent (and now inserted).
    Miss,
}

/// Set-associative cache with true-LRU replacement and 64-byte lines.
#[derive(Clone, Debug)]
pub struct Cache {
    /// log2 of line size (64 B).
    line_bits: u32,
    sets: usize,
    ways: usize,
    /// tag per (set, way); `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamp per (set, way).
    stamps: Vec<u64>,
    clock: u64,
}

impl Cache {
    /// Build a cache of `bytes` capacity with the given associativity.
    /// `bytes` is rounded down to a power-of-two number of sets.
    pub fn new(bytes: usize, ways: usize) -> Self {
        let line = 64usize;
        let ways = ways.max(1);
        let sets = (bytes / line / ways).next_power_of_two().max(1);
        // next_power_of_two rounds up; halve if we overshot capacity
        let sets = if sets * line * ways > bytes && sets > 1 {
            sets / 2
        } else {
            sets
        };
        Cache {
            line_bits: 6,
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
        }
    }

    /// Effective capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * 64
    }

    /// Probe (and on miss, fill) the line containing `addr`.
    pub fn access(&mut self, addr: usize) -> Probe {
        let line = (addr as u64) >> self.line_bits;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        self.clock += 1;
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for w in base..base + self.ways {
            if self.tags[w] == line {
                self.stamps[w] = self.clock;
                return Probe::Hit;
            }
            if self.stamps[w] < victim_stamp {
                victim_stamp = self.stamps[w];
                victim = w;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        Probe::Miss
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(4096, 4);
        assert_eq!(c.access(0x1000), Probe::Miss);
        assert_eq!(c.access(0x1000), Probe::Hit);
        assert_eq!(c.access(0x103F), Probe::Hit); // same 64B line
        assert_eq!(c.access(0x1040), Probe::Miss); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way, 1 set: capacity 2 lines.
        let mut c = Cache::new(128, 2);
        assert_eq!(c.capacity(), 128);
        c.access(0); // line A
        c.access(64); // line B
        c.access(0); // touch A (B is now LRU)
        assert_eq!(c.access(128), Probe::Miss); // evicts B
        assert_eq!(c.access(0), Probe::Hit);
        assert_eq!(c.access(64), Probe::Miss); // B was evicted
    }

    #[test]
    fn clear_resets() {
        let mut c = Cache::new(4096, 8);
        c.access(0);
        c.clear();
        assert_eq!(c.access(0), Probe::Miss);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(1 << 12, 8); // 4 KiB = 64 lines
                                            // stream 256 lines twice: second pass must still miss heavily
        let mut misses = 0;
        for pass in 0..2 {
            for i in 0..256 {
                if c.access(i * 64) == Probe::Miss && pass == 1 {
                    misses += 1;
                }
            }
        }
        assert!(misses > 200, "expected streaming misses, got {misses}");
    }

    #[test]
    fn working_set_within_capacity_hits_on_second_pass() {
        let mut c = Cache::new(1 << 14, 8); // 16 KiB = 256 lines
        let mut second_pass_misses = 0;
        for pass in 0..2 {
            for i in 0..128 {
                if c.access(i * 64) == Probe::Miss && pass == 1 {
                    second_pass_misses += 1;
                }
            }
        }
        assert_eq!(second_pass_misses, 0);
    }
}
