//! Three-level cache hierarchy with an idealized prefetch model and a
//! simple latency/cycle model.

use crate::cache::{Cache, Probe};

/// Where an access was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServedBy {
    /// First-level cache.
    L1,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory (LLC miss).
    Memory,
}

/// Size/associativity of one level.
#[derive(Clone, Copy, Debug)]
pub struct LevelConfig {
    /// Capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub ways: usize,
}

/// Full hierarchy configuration.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// L1 data cache.
    pub l1: LevelConfig,
    /// L2 cache.
    pub l2: LevelConfig,
    /// Last-level cache.
    pub llc: LevelConfig,
}

impl CacheConfig {
    /// The paper's SKX socket: 32 KiB L1d, 1 MiB L2, 38.5 MiB LLC.
    pub fn skylake() -> Self {
        CacheConfig {
            l1: LevelConfig {
                bytes: 32 << 10,
                ways: 8,
            },
            l2: LevelConfig {
                bytes: 1 << 20,
                ways: 16,
            },
            llc: LevelConfig {
                bytes: 38 << 20,
                ways: 11,
            },
        }
    }

    /// A hierarchy scaled so that `hot_bytes` (the dominant data structure,
    /// e.g. the occurrence table) has the same ratio to the LLC as the
    /// human-genome index has to a 38.5 MiB SKX LLC (~40:1). Without this,
    /// a laptop-scale synthetic index would fit in a simulated SKX LLC and
    /// the paper's memory-latency story would be invisible.
    pub fn scaled_to(hot_bytes: usize) -> Self {
        let llc = (hot_bytes / 40).clamp(1 << 14, 38 << 20);
        let l2 = (llc / 38).clamp(1 << 12, 1 << 20);
        let l1 = (l2 / 32).clamp(1 << 10, 32 << 10);
        CacheConfig {
            l1: LevelConfig { bytes: l1, ways: 8 },
            l2: LevelConfig {
                bytes: l2,
                ways: 16,
            },
            llc: LevelConfig {
                bytes: llc,
                ways: 11,
            },
        }
    }
}

/// Load-to-use latencies per level, in cycles (SKX-like).
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// L1 hit latency.
    pub l1: u64,
    /// L2 hit latency.
    pub l2: u64,
    /// LLC hit latency.
    pub llc: u64,
    /// Memory latency.
    pub memory: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            l1: 4,
            l2: 14,
            llc: 44,
            memory: 200,
        }
    }
}

/// Inclusive three-level hierarchy.
///
/// Prefetches are idealized: `prefetch(addr)` installs the line in every
/// level immediately and without charging latency, so a later demand load
/// hits in L1. This is the paper's best case ("software prefetching ...
/// can not alleviate memory latency completely" — our model shows the
/// *upper bound* of what prefetch can do; the measured wall-clock numbers
/// show what it actually does).
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    llc: Cache,
}

impl CacheHierarchy {
    /// Build from a configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        CacheHierarchy {
            l1: Cache::new(cfg.l1.bytes, cfg.l1.ways),
            l2: Cache::new(cfg.l2.bytes, cfg.l2.ways),
            llc: Cache::new(cfg.llc.bytes, cfg.llc.ways),
        }
    }

    /// Demand access to `addr`; returns the level that served it.
    pub fn access(&mut self, addr: usize) -> ServedBy {
        if self.l1.access(addr) == Probe::Hit {
            return ServedBy::L1;
        }
        if self.l2.access(addr) == Probe::Hit {
            return ServedBy::L2;
        }
        if self.llc.access(addr) == Probe::Hit {
            return ServedBy::Llc;
        }
        ServedBy::Memory
    }

    /// Idealized `prefetcht0`: install into all levels.
    pub fn prefetch(&mut self, addr: usize) {
        self.l1.access(addr);
        self.l2.access(addr);
        self.llc.access(addr);
    }

    /// Access every line in `[addr, addr+bytes)`.
    pub fn access_range(&mut self, addr: usize, bytes: usize) -> (u64, [u64; 4]) {
        let mut n = 0u64;
        let mut served = [0u64; 4];
        let first = addr & !63;
        let last = addr + bytes.max(1) - 1;
        let mut a = first;
        while a <= last {
            let s = self.access(a);
            served[s as usize] += 1;
            n += 1;
            a += 64;
        }
        (n, served)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_in_l1() {
        let mut h = CacheHierarchy::new(CacheConfig::scaled_to(1 << 24));
        assert_eq!(h.access(0x4000), ServedBy::Memory);
        assert_eq!(h.access(0x4000), ServedBy::L1);
    }

    #[test]
    fn l2_serves_after_l1_eviction() {
        let cfg = CacheConfig {
            l1: LevelConfig {
                bytes: 128,
                ways: 1,
            }, // 2 sets x 1 way
            l2: LevelConfig {
                bytes: 4096,
                ways: 4,
            },
            llc: LevelConfig {
                bytes: 1 << 16,
                ways: 8,
            },
        };
        let mut h = CacheHierarchy::new(cfg);
        h.access(0); // into all levels
        h.access(128); // maps to same L1 set (2 sets of 64B), evicts line 0 from L1
        assert_eq!(h.access(0), ServedBy::L2);
    }

    #[test]
    fn prefetch_converts_miss_to_hit() {
        let mut h = CacheHierarchy::new(CacheConfig::scaled_to(1 << 24));
        h.prefetch(0x9000);
        assert_eq!(h.access(0x9000), ServedBy::L1);
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut h = CacheHierarchy::new(CacheConfig::scaled_to(1 << 24));
        let (n, served) = h.access_range(0x100, 64); // straddles two lines (0x100..0x140)? no: 0x100 is line-aligned
        assert_eq!(n, 1);
        assert_eq!(served[ServedBy::Memory as usize], 1);
        let (n, _) = h.access_range(0x13F, 2); // straddles 0x100 and 0x140 lines
        assert_eq!(n, 2);
    }

    #[test]
    fn scaled_config_tracks_hot_bytes() {
        let cfg = CacheConfig::scaled_to(400 << 20);
        assert!(cfg.llc.bytes >= 9 << 20 && cfg.llc.bytes <= 11 << 20);
        assert!(cfg.l1.bytes <= 32 << 10);
        // tiny structure clamps at the floor
        let cfg = CacheConfig::scaled_to(1);
        assert_eq!(cfg.llc.bytes, 1 << 14);
    }
}
