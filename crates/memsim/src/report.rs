//! Formatting helpers for counter tables (used by the bench binaries).

use crate::hierarchy::LatencyModel;
use crate::sink::Counters;

/// A named column of counters plus a wall-clock time, as printed in the
/// paper's Tables 4 and 5.
#[derive(Clone, Debug)]
pub struct CounterReport {
    /// Column label (e.g. "Original").
    pub label: String,
    /// Modeled counters.
    pub counters: Counters,
    /// Measured wall-clock seconds for the timing run.
    pub seconds: f64,
}

impl CounterReport {
    /// Render a set of reports as an aligned text table.
    pub fn render_table(title: &str, reports: &[CounterReport], lat: &LatencyModel) -> String {
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        let header: Vec<String> = std::iter::once("Performance Counters".to_string())
            .chain(reports.iter().map(|r| r.label.clone()))
            .collect();
        let rows: Vec<(String, Vec<String>)> = vec![
            (
                "# Instructions (x10^6)".into(),
                reports
                    .iter()
                    .map(|r| fmt_m(r.counters.instructions))
                    .collect(),
            ),
            (
                "# Loads (x10^6)".into(),
                reports.iter().map(|r| fmt_m(r.counters.loads)).collect(),
            ),
            (
                "# Stores (x10^6)".into(),
                reports.iter().map(|r| fmt_m(r.counters.stores)).collect(),
            ),
            (
                "# LLC Misses (x10^6)".into(),
                reports
                    .iter()
                    .map(|r| fmt_m(r.counters.llc_misses()))
                    .collect(),
            ),
            (
                "Average latency (cycles)".into(),
                reports
                    .iter()
                    .map(|r| format!("{:.1}", r.counters.avg_load_latency(lat)))
                    .collect(),
            ),
            (
                "Time".into(),
                reports
                    .iter()
                    .map(|r| format!("{:.2}s", r.seconds))
                    .collect(),
            ),
        ];
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for (name, cells) in &rows {
            widths[0] = widths[0].max(name.len());
            for (i, c) in cells.iter().enumerate() {
                widths[i + 1] = widths[i + 1].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i] + 2))
                .collect::<String>()
        };
        out.push_str(&fmt_row(&header));
        out.push('\n');
        for (name, cells) in rows {
            let mut all: Vec<String> = vec![name];
            all.extend(cells);
            out.push_str(&fmt_row(&all));
            out.push('\n');
        }
        out
    }
}

fn fmt_m(v: u64) -> String {
    format!("{:.1}", v as f64 / 1.0e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Counters;

    #[test]
    fn renders_aligned_table() {
        let r = vec![
            CounterReport {
                label: "Original".into(),
                counters: Counters {
                    instructions: 17_117_000_000,
                    loads: 4_429_000_000,
                    ..Default::default()
                },
                seconds: 4.2,
            },
            CounterReport {
                label: "Optimized".into(),
                counters: Counters {
                    instructions: 8_160_000_000,
                    loads: 2_115_000_000,
                    ..Default::default()
                },
                seconds: 2.1,
            },
        ];
        let t = CounterReport::render_table("Table 4", &r, &LatencyModel::default());
        assert!(t.contains("Table 4"));
        assert!(t.contains("17117.0"));
        assert!(t.contains("2.10s"));
        // every line has the same printable structure
        assert!(t.lines().count() >= 7);
    }
}
