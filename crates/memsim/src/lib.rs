//! Performance-counter substrate.
//!
//! The paper's Tables 4, 5 and 7 report hardware counters (instructions,
//! loads, stores, LLC misses, average memory latency, cycles) measured
//! with Intel VTune. This container has no stable access to such counters,
//! so the kernels in `mem2-fmindex` are instrumented against the
//! [`PerfSink`] trait instead:
//!
//! * timing runs use [`NoopSink`], a zero-sized type whose callbacks are
//!   empty `#[inline(always)]` functions — monomorphization removes every
//!   trace of instrumentation from the hot path;
//! * counter runs use [`CountingSink`], which tallies abstract operations
//!   and replays every memory access through a set-associative LRU cache
//!   hierarchy, including an idealized model of `prefetcht0`.
//!
//! The model is deterministic, so experiment output is reproducible
//! bit-for-bit. Absolute numbers are *proxies*; EXPERIMENTS.md compares
//! shapes (ratios between configurations), which is what the paper's
//! argument rests on.
//!
//! Key types: the [`PerfSink`] instrumentation trait (kernels are generic
//! over it; [`NoopSink`] compiles to nothing), the [`CacheHierarchy`]
//! counter model, and [`CounterReport`]. Introduced in PR 1.

pub mod cache;
pub mod hierarchy;
pub mod report;
pub mod sink;

pub use cache::Cache;
pub use hierarchy::{CacheConfig, CacheHierarchy, LatencyModel, LevelConfig};
pub use report::CounterReport;
pub use sink::{CountingSink, NoopSink, PerfSink};
